"""Variable tracking: the call-stack-matching substitute.

The prototype identifies the variable behind each memory reference by
intercepting heap allocations and matching allocation call stacks
(Section 6.2, citing Ji et al.).  Here every allocation is registered
with the variable (allocation-site) name; an interval index then
attributes raw addresses to variables in one vectorised pass — the same
information, recovered the same way (allocation interception), minus
the ptrace plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProfilingError

__all__ = ["VariableInfo", "VariableRegistry"]

UNATTRIBUTED = -1


@dataclass
class VariableInfo:
    """One program variable (allocation site)."""

    variable_id: int
    name: str
    size_bytes: int = 0
    regions: list[tuple[int, int]] = field(default_factory=list)

    def add_region(self, start: int, length: int) -> None:
        """Record another allocation region for this variable."""
        self.regions.append((start, start + length))
        self.size_bytes += length

    def covers(self, address: int) -> bool:
        """True if the address lies in one of this variable's regions."""
        return any(start <= address < end for start, end in self.regions)


class VariableRegistry:
    """Allocation-site registry with fast address attribution."""

    def __init__(self) -> None:
        self._by_name: dict[str, VariableInfo] = {}
        self._variables: list[VariableInfo] = []
        self._index_dirty = True
        self._starts = np.zeros(0, dtype=np.uint64)
        self._ends = np.zeros(0, dtype=np.uint64)
        self._owners = np.zeros(0, dtype=np.int64)

    def variable(self, name: str) -> VariableInfo:
        """Get or create the variable for an allocation-site name."""
        info = self._by_name.get(name)
        if info is None:
            info = VariableInfo(variable_id=len(self._variables), name=name)
            self._by_name[name] = info
            self._variables.append(info)
        return info

    def record_allocation(self, name: str, va: int, size: int) -> VariableInfo:
        """Register one allocation (malloc interception)."""
        if size <= 0:
            raise ProfilingError("allocation size must be positive")
        info = self.variable(name)
        info.add_region(va, size)
        self._index_dirty = True
        return info

    def __len__(self) -> int:
        return len(self._variables)

    def __iter__(self):
        return iter(self._variables)

    def by_id(self, variable_id: int) -> VariableInfo:
        """Variable info by id."""
        try:
            return self._variables[variable_id]
        except IndexError:
            raise ProfilingError(f"unknown variable id {variable_id}") from None

    def names(self) -> list[str]:
        """All variable names, id order."""
        return [info.name for info in self._variables]

    # -- attribution ---------------------------------------------------------
    def _rebuild_index(self) -> None:
        triples = [
            (start, end, info.variable_id)
            for info in self._variables
            for start, end in info.regions
        ]
        triples.sort()
        for (_, end_a, _), (start_b, _, _) in zip(triples, triples[1:]):
            if start_b < end_a:
                raise ProfilingError("overlapping variable regions")
        self._starts = np.array([t[0] for t in triples], dtype=np.uint64)
        self._ends = np.array([t[1] for t in triples], dtype=np.uint64)
        self._owners = np.array([t[2] for t in triples], dtype=np.int64)
        self._index_dirty = False

    def attribute(self, addresses: np.ndarray) -> np.ndarray:
        """Variable id per address (UNATTRIBUTED when no region matches)."""
        if self._index_dirty:
            self._rebuild_index()
        addresses = np.asarray(addresses, dtype=np.uint64)
        if self._starts.size == 0:
            return np.full(addresses.size, UNATTRIBUTED, dtype=np.int64)
        slot = np.searchsorted(self._starts, addresses, side="right") - 1
        slot = np.clip(slot, 0, self._starts.size - 1)
        inside = (addresses >= self._starts[slot]) & (addresses < self._ends[slot])
        out = np.where(inside, self._owners[slot], UNATTRIBUTED)
        return out.astype(np.int64)
