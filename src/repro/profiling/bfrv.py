"""Bit-flip-rate vectors (Equation 1).

For a physical-address trace ``a_1 .. a_n``, the flip rate of bit *i* is
the fraction of consecutive pairs in which bit *i* differs:

    bfr_i = (1/n) * sum_j  bit_i(a_j) XOR bit_i(a_{j+1})

Bits that flip often separate *temporally adjacent* accesses, so routing
them to the channel field spreads concurrent requests across channels —
the selection rule shared by Experiment 1 (Fig. 3b) and the bit-shuffle
configurations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfilingError

__all__ = ["bit_flip_rate_vector", "window_flip_rates", "dominant_flip_bit"]


def bit_flip_rate_vector(
    addresses: np.ndarray,
    num_bits: int,
    bit_offset: int = 0,
) -> np.ndarray:
    """Flip rate of ``num_bits`` address bits starting at ``bit_offset``.

    Returns a float vector of length ``num_bits`` (index 0 = bit
    ``bit_offset``).  A trace with fewer than two accesses has no
    consecutive pairs and yields all-zero rates.
    """
    if num_bits <= 0:
        raise ProfilingError("num_bits must be positive")
    addresses = np.asarray(addresses, dtype=np.uint64)
    if addresses.size < 2:
        return np.zeros(num_bits)
    diffs = addresses[1:] ^ addresses[:-1]
    rates = np.empty(num_bits)
    for bit in range(num_bits):
        shift = np.uint64(bit_offset + bit)
        rates[bit] = float(((diffs >> shift) & np.uint64(1)).mean())
    return rates


def window_flip_rates(addresses: np.ndarray, window: tuple[int, int]) -> np.ndarray:
    """Flip rates for the chunk-offset window ``[low, high)``."""
    low, high = window
    if high <= low:
        raise ProfilingError("empty bit window")
    return bit_flip_rate_vector(addresses, num_bits=high - low, bit_offset=low)


def dominant_flip_bit(addresses: np.ndarray, num_bits: int, bit_offset: int = 0) -> int:
    """Absolute position of the hottest bit (Fig. 3b's peak)."""
    rates = bit_flip_rate_vector(addresses, num_bits, bit_offset)
    return bit_offset + int(np.argmax(rates))
