"""Bit-flip-rate vectors (Equation 1).

For a physical-address trace ``a_1 .. a_n``, the flip rate of bit *i* is
the fraction of consecutive pairs in which bit *i* differs:

    bfr_i = (1/n) * sum_j  bit_i(a_j) XOR bit_i(a_{j+1})

Bits that flip often separate *temporally adjacent* accesses, so routing
them to the channel field spreads concurrent requests across channels —
the selection rule shared by Experiment 1 (Fig. 3b) and the bit-shuffle
configurations.

Degenerate traces never raise: a trace with fewer than two accesses has
no consecutive pairs, and a constant trace has no flips; both yield the
all-zero vector.  Callers that need to distinguish "genuinely calm"
from "nothing to measure" (the online estimator consuming arbitrary
stream windows) pass a ``flags`` dict, which comes back with
``flags["degenerate"]`` set to ``"short-trace"`` or
``"constant-addresses"`` when that happened.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfilingError

__all__ = [
    "DEGENERATE_CONSTANT",
    "DEGENERATE_SHORT",
    "bit_flip_rate_vector",
    "flip_counts",
    "window_flip_rates",
    "dominant_flip_bit",
]

#: ``flags["degenerate"]`` value for traces with fewer than two accesses.
DEGENERATE_SHORT = "short-trace"
#: ``flags["degenerate"]`` value for constant-address traces (pairs
#: exist but no bit ever flips).
DEGENERATE_CONSTANT = "constant-addresses"


def flip_counts(
    diffs: np.ndarray, num_bits: int, bit_offset: int = 0
) -> np.ndarray:
    """Per-bit flip counts of a XOR-delta stream (``int64`` vector).

    The shared integer core of the batch and streaming estimators: the
    batch rate is ``counts / len(diffs)`` and the streaming estimator
    accumulates these counts across windows, so dividing the
    accumulated sums reproduces the batch division bit-exactly.
    """
    if num_bits <= 0:
        raise ProfilingError("num_bits must be positive")
    diffs = np.asarray(diffs, dtype=np.uint64)
    counts = np.empty(num_bits, dtype=np.int64)
    for bit in range(num_bits):
        shift = np.uint64(bit_offset + bit)
        counts[bit] = int(((diffs >> shift) & np.uint64(1)).sum())
    return counts


def _flag(flags: dict | None, value: str | None) -> None:
    if flags is not None:
        flags["degenerate"] = value


def bit_flip_rate_vector(
    addresses: np.ndarray,
    num_bits: int,
    bit_offset: int = 0,
    flags: dict | None = None,
) -> np.ndarray:
    """Flip rate of ``num_bits`` address bits starting at ``bit_offset``.

    Returns a float vector of length ``num_bits`` (index 0 = bit
    ``bit_offset``).  A trace with fewer than two accesses has no
    consecutive pairs and yields all-zero rates; a constant-address
    trace yields all-zero rates as well.  ``flags``, when given, records
    which degeneracy (if any) produced a zero vector.
    """
    if num_bits <= 0:
        raise ProfilingError("num_bits must be positive")
    addresses = np.asarray(addresses, dtype=np.uint64)
    if addresses.size < 2:
        _flag(flags, DEGENERATE_SHORT)
        return np.zeros(num_bits)
    diffs = addresses[1:] ^ addresses[:-1]
    if not diffs.any():
        _flag(flags, DEGENERATE_CONSTANT)
        return np.zeros(num_bits)
    _flag(flags, None)
    counts = flip_counts(diffs, num_bits, bit_offset)
    return counts / float(diffs.size)


def window_flip_rates(
    addresses: np.ndarray,
    window: tuple[int, int],
    flags: dict | None = None,
) -> np.ndarray:
    """Flip rates for the chunk-offset window ``[low, high)``.

    Degenerate traces yield the zero vector (recorded in ``flags``)
    exactly as :func:`bit_flip_rate_vector`; only an empty bit window
    is a caller error.
    """
    low, high = window
    if high <= low:
        raise ProfilingError("empty bit window")
    return bit_flip_rate_vector(
        addresses, num_bits=high - low, bit_offset=low, flags=flags
    )


def dominant_flip_bit(addresses: np.ndarray, num_bits: int, bit_offset: int = 0) -> int:
    """Absolute position of the hottest bit (Fig. 3b's peak)."""
    rates = bit_flip_rate_vector(addresses, num_bits, bit_offset)
    return bit_offset + int(np.argmax(rates))
