"""Co-run ablation: the cluster-budget rationale behind Fig. 12's
4-cluster configurations.

Section 7.4: "Using 4 clusters per application represents the case in
which several variables may need to share the same address mapping when
there is a large number of co-run applications but only a limited
number of chunk table entries".  We co-run four applications on one
shared CMT and sweep the per-application cluster budget, verifying that
(a) the 256-mapping CMT is never exceeded, (b) a tight budget already
recovers most of the benefit.
"""

from __future__ import annotations

from repro.system.corun import CorunMachine
from repro.system.reporting import format_table
from repro.workloads import parsec_workload, spec2006_workload

from conftest import is_quick


def applications():
    names = ["libquantum", "omnetpp"] if is_quick() else [
        "libquantum",
        "omnetpp",
        "h264ref",
    ]
    apps = [spec2006_workload(name) for name in names]
    if not is_quick():
        apps.append(parsec_workload("vips"))
    return apps


def run_corun_budget():
    apps = applications()
    baseline = CorunMachine(use_sdam=False).run(apps)
    rows = [
        {
            "config": "BS+DM (shared)",
            "clusters_per_app": 0,
            "live_mappings": 1,
            "speedup": 1.0,
        }
    ]
    for budget in (1, 2, 4, 8):
        result = CorunMachine(clusters_per_app=budget).run(apps)
        rows.append(
            {
                "config": f"SDAM ML({budget})",
                "clusters_per_app": budget,
                "live_mappings": result.live_mappings,
                "speedup": baseline.time_ns / result.time_ns,
            }
        )
    return rows


def test_corun_cluster_budget(benchmark, record):
    rows = benchmark.pedantic(run_corun_budget, rounds=1, iterations=1)
    record(
        "corun_cluster_budget",
        format_table(
            rows,
            title="Co-run ablation: shared-CMT cluster budget per app",
        ),
    )
    by_budget = {row["clusters_per_app"]: row for row in rows}
    # The shared CMT never overflows its 256 entries.
    assert all(row["live_mappings"] <= 256 for row in rows)
    # SDAM helps the multiprogrammed mix.
    assert by_budget[4]["speedup"] > 1.02
    # A tight budget already captures most of the benefit (the paper's
    # argument that 4 clusters/app is a workable co-run operating point).
    assert by_budget[1]["speedup"] > 0.8 * by_budget[8]["speedup"]
