"""Figure 11: (a) four-thread data copy with 1..4 distinct strides,
throughput normalised to peak streaming; (b) CLP-utilisation
distribution over 64 strides for BS+BSM, BS+HM and SDM+BSM.

The headline shapes: with one access pattern BSM and SDM tie at the
top; as patterns mix, the global BSM collapses, HM stays flat-but-
mediocre, and SDM holds; over the 64-stride sweep, SDM dominates the
whole distribution while HM shows a weak tail.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ChunkGeometry,
    GlobalMappingTranslator,
    SDAMController,
    default_hash_mapping,
    identity_mapping,
    select_window_permutation,
)
from repro.core.bitshuffle import select_global_mapping
from repro.hbm import WindowModel, hbm2_config
from repro.profiling.bfrv import bit_flip_rate_vector, window_flip_rates
from repro.system.reporting import format_series, format_table

from conftest import is_quick

CFG = hbm2_config()
GEO = ChunkGeometry()
LAYOUT = CFG.layout()
PER_STREAM = 8192
MODEL = WindowModel(CFG, max_inflight=256)


def stride_pa(stride: int, slot: int, chunks_per_slot: int = 4) -> np.ndarray:
    base = np.uint64(slot * chunks_per_slot * GEO.chunk_bytes)
    span = np.uint64(chunks_per_slot * GEO.chunk_bytes)
    offs = (np.arange(PER_STREAM, dtype=np.uint64) * np.uint64(stride * 64)) % span
    return base + offs


def interleave(parts: list[np.ndarray]) -> np.ndarray:
    return np.stack(parts, axis=1).reshape(-1)


def translators_for(parts: list[np.ndarray]):
    """Build the three systems' translators for a given mix."""
    pa = interleave(parts)
    rates = bit_flip_rate_vector(pa, LAYOUT.width)
    bsm = GlobalMappingTranslator(select_global_mapping(rates, LAYOUT))
    hm = GlobalMappingTranslator(default_hash_mapping(LAYOUT))
    sdm = SDAMController(GEO)
    for slot, part in enumerate(parts):
        perm = select_window_permutation(
            window_flip_rates(part, GEO.window_slice()), LAYOUT, GEO
        )
        mapping_id = sdm.register_mapping(perm)
        for chunk in range(slot * 4, slot * 4 + 4):
            sdm.assign_chunk(chunk, mapping_id)
    return pa, {"BS+BSM": bsm, "BS+HM": hm, "SDM+BSM": sdm}


def run_fig11a():
    peak = CFG.peak_bandwidth_gbps
    mixes = ((1,), (1, 16), (1, 8, 16), (1, 4, 8, 16))
    rows = []
    for mix in mixes:
        parts = [stride_pa(s, i) for i, s in enumerate(mix)]
        pa, translators = translators_for(parts)
        base = MODEL.simulate(
            GlobalMappingTranslator(identity_mapping(LAYOUT.width)).translate(pa)
        )
        row = {"num_strides": len(mix), "BS+DM": base.throughput_gbps / peak}
        for name, translator in translators.items():
            stats = MODEL.simulate(translator.translate(pa))
            row[name] = stats.throughput_gbps / peak
        rows.append(row)
    return rows


def run_fig11b():
    strides = range(1, 17 if is_quick() else 65)
    utilisation: dict[str, list[float]] = {"BS+BSM": [], "BS+HM": [], "SDM+BSM": []}
    for stride in strides:
        parts = [stride_pa(stride, 0)]
        pa, translators = translators_for(parts)
        for name, translator in translators.items():
            stats = MODEL.simulate(translator.translate(pa))
            utilisation[name].append(stats.clp_utilization)
    return {name: np.sort(values) for name, values in utilisation.items()}


def test_fig11_mixed_strides_and_clp_distribution(benchmark, record):
    rows = benchmark.pedantic(run_fig11a, rounds=1, iterations=1)
    distribution = run_fig11b()
    text = format_table(
        rows, title="Fig 11(a): normalised throughput vs number of strides"
    )
    summary = {
        name: f"min {values.min():.2f} / median {np.median(values):.2f} /"
        f" mean {values.mean():.2f}"
        for name, values in distribution.items()
    }
    text += "\n\n" + format_series(
        summary,
        "system",
        "CLP utilisation (sorted distribution)",
        float_format="{}",
        title="Fig 11(b): CLP utilisation across stride sweep",
    )
    record("fig11_mixed_strides", text)

    # (a) single pattern: BSM ties SDM near peak.
    first = rows[0]
    assert first["BS+BSM"] > 0.9 and first["SDM+BSM"] > 0.9
    # (a) mixed patterns: SDM consistently on top; gap grows with mix.
    last = rows[-1]
    assert last["SDM+BSM"] >= last["BS+BSM"]
    assert last["SDM+BSM"] >= last["BS+HM"]
    assert last["SDM+BSM"] > 0.9
    # (b) SDM dominates the distribution; HM has a weak tail.
    assert distribution["SDM+BSM"].mean() >= distribution["BS+HM"].mean()
    assert distribution["SDM+BSM"].min() >= distribution["BS+HM"].min()
