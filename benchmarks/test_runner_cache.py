"""Experiment-engine benchmark: warm-cache and parallel sweeps.

Runs the quick Fig. 12-style sweep three ways — cold serial, cold over
a process pool, warm from the stage cache — and asserts the engine's
two contracts: a warm sweep is at least 5x faster than the cold serial
baseline (100 % cache hits, zero bytes simulated), and parallel
execution is numerically identical to serial.
"""

from __future__ import annotations

import time

from repro.api import QUICK_DL_CONFIG, evaluation_workloads
from repro.system import ExperimentRunner, standard_systems
from repro.system.reporting import format_table


def run_three_ways(tmp_path):
    workloads = evaluation_workloads(quick=True)
    systems = standard_systems()
    kwargs = dict(systems=systems, dl_config=QUICK_DL_CONFIG)

    start = time.perf_counter()
    serial = ExperimentRunner().run_suite(workloads, **kwargs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ExperimentRunner(max_workers=4, cache_dir=tmp_path).run_suite(
        workloads, **kwargs
    )
    parallel_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = ExperimentRunner(cache_dir=tmp_path).run_suite(workloads, **kwargs)
    warm_seconds = time.perf_counter() - start

    return (
        (serial, serial_seconds),
        (parallel, parallel_seconds),
        (warm, warm_seconds),
    )


def test_runner_cache_and_parallel_speedup(benchmark, record, tmp_path):
    (serial, s_sec), (parallel, p_sec), (warm, w_sec) = benchmark.pedantic(
        run_three_ways, args=(tmp_path,), rounds=1, iterations=1
    )
    cells = len(serial.table.workloads()) * len(serial.table.systems())
    rows = [
        {"mode": "cold serial", "seconds": s_sec, "cache_hits": 0},
        {
            "mode": "cold parallel (4 workers)",
            "seconds": p_sec,
            "cache_hits": parallel.cache_hits,
        },
        {
            "mode": "warm cache",
            "seconds": w_sec,
            "cache_hits": warm.cache_hits,
        },
        {"mode": "warm speedup", "seconds": s_sec / w_sec, "cache_hits": cells},
    ]
    record(
        "runner_cache",
        format_table(rows, title="quick suite: engine execution modes"),
    )

    assert not serial.errors and not parallel.errors and not warm.errors
    # Parallel cold == serial cold, numerically.
    assert parallel.table.fingerprint() == serial.table.fingerprint()
    # Warm == cold, bit-identically, from the cache alone.
    assert warm.table.to_dict() == parallel.table.to_dict()
    assert warm.metrics["evaluate"].cache_hits == cells
    assert warm.cache_misses == 0
    assert warm.bytes_simulated == 0
    assert s_sec / w_sec >= 5.0
