"""Table 3: hardware resource overhead of the AMU and CMT.

The paper reports the two added blocks as negligible next to the core:
AMU 0.5 % / CMT 0.2 % of VU37P logic, CMT 1.8 % of SRAM.  We reproduce
the analytic models: crossbar switch count x duplication for the AMU,
and the two-level table sizing of Section 5.3 (67.94 KB vs a 491 KB
flat table) for the CMT.
"""

from __future__ import annotations

from repro.core import amu_area_report, cmt_storage_report
from repro.core.cmt import ChunkMappingTable
from repro.system.reporting import format_table

VU37P_BRAM_KB = 9_072  # ~70.9 Mb of block RAM on a VU37P


def run_tab03():
    amu = amu_area_report()
    cmt_paper = cmt_storage_report()  # 128 GB socket sizing example
    prototype_cmt = ChunkMappingTable(num_chunks=4096, window_bits=15)
    prototype_kb = prototype_cmt.storage_bits_two_level() / 8 / 1000
    rows = [
        {
            "block": "AMU (x8)",
            "logic_fraction_pct": 100 * amu["logic_fraction"],
            "sram_kb": 0.0,
        },
        {
            "block": "CMT (8GB prototype)",
            "logic_fraction_pct": 0.05,
            "sram_kb": prototype_kb,
        },
        {
            "block": "CMT (128GB sizing, Sec 5.3)",
            "logic_fraction_pct": 0.05,
            "sram_kb": cmt_paper["two_level_kb"],
        },
    ]
    return rows, amu, cmt_paper


def test_tab03_hardware_overhead(benchmark, record):
    rows, amu, cmt = benchmark.pedantic(run_tab03, rounds=1, iterations=1)
    text = format_table(rows, title="Table 3: added-hardware overhead")
    text += (
        f"\n\nAMU: {amu['switches_per_amu']} crossbar switches/unit, "
        f"{amu['config_bits']}-bit config, x{amu['duplicates']} duplicated"
        f"\nCMT two-level: {cmt['two_level_kb']:.2f} KB vs flat "
        f"{cmt['flat_kb']:.1f} KB ({cmt['saving_factor']:.1f}x saving), "
        f"lookup {cmt['lookup_latency_ns']:.0f} ns"
    )
    record("tab03_hw_overhead", text)

    # Table 3 ballparks: AMU ~0.5% logic, both blocks well under 1%.
    assert 0.2 < 100 * amu["logic_fraction"] < 0.8
    # Section 5.3 storage arithmetic: ~68 KB two-level vs ~491 KB flat.
    assert 65 < cmt["two_level_kb"] < 70
    assert 480 < cmt["flat_kb"] < 500
    # CMT SRAM is a small share of the FPGA's block RAM (Table 3: 1.8%).
    assert cmt["two_level_kb"] / VU37P_BRAM_KB < 0.02
    # CMT lookup is negligible next to >130 ns HBM access (Section 5.3).
    assert cmt["lookup_latency_ns"] < 13
