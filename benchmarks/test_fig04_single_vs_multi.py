"""Figure 4: one global mapping vs per-pattern mappings for stride mixes.

Experiment 2 of Section 3: as a workload mixes more distinct strides,
one globally-selected bit-shuffle mapping loses throughput while
independently choosing the optimal mapping per pattern holds it — the
core motivation for SDAM.
"""

from __future__ import annotations

import numpy as np

from repro.core import ChunkGeometry, SDAMController, select_window_permutation
from repro.core.bitshuffle import select_global_mapping
from repro.hbm import WindowModel, hbm2_config
from repro.profiling.bfrv import bit_flip_rate_vector, window_flip_rates
from repro.system.reporting import format_table

CFG = hbm2_config()
GEO = ChunkGeometry()
LAYOUT = CFG.layout()
PER_STRIDE = 8192
MIXES = ((1,), (1, 16), (1, 8, 16), (1, 4, 8, 16))


def stride_pa(stride: int, chunk_index: int) -> np.ndarray:
    base = np.uint64(chunk_index * 4 * GEO.chunk_bytes)
    offsets = (
        np.arange(PER_STRIDE, dtype=np.uint64) * np.uint64(stride * 64)
    ) % np.uint64(4 * GEO.chunk_bytes)
    return base + offsets


def interleave(parts: list[np.ndarray]) -> np.ndarray:
    stacked = np.stack(parts, axis=1)
    return stacked.reshape(-1)


def run_fig04():
    model = WindowModel(CFG, max_inflight=256)
    rows = []
    for mix in MIXES:
        parts = [stride_pa(s, i) for i, s in enumerate(mix)]
        pa = interleave(parts)

        # Case 1: one global mapping from the aggregate flip rates.
        rates = bit_flip_rate_vector(pa, LAYOUT.width)
        global_mapping = select_global_mapping(rates, LAYOUT)
        single = model.simulate(np.asarray(global_mapping.apply(pa)))

        # Case 2: SDAM gives each stride's chunks their own mapping.
        controller = SDAMController(GEO)
        for index, (stride, part) in enumerate(zip(mix, parts)):
            window_rates = window_flip_rates(part, GEO.window_slice())
            perm = select_window_permutation(window_rates, LAYOUT, GEO)
            mapping_id = controller.register_mapping(perm)
            for chunk in range(index * 4, index * 4 + 4):
                controller.assign_chunk(chunk, mapping_id)
        multi = model.simulate(controller.translate(pa))

        rows.append(
            {
                "num_strides": len(mix),
                "single_gbps": single.throughput_gbps,
                "multi_gbps": multi.throughput_gbps,
                "multi_over_single": multi.throughput_gbps
                / single.throughput_gbps,
            }
        )
    return rows


def test_fig04_multi_mapping_wins_as_mix_grows(benchmark, record):
    rows = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    record(
        "fig04_single_vs_multi",
        format_table(
            rows, title="Fig 4: single vs per-pattern mapping throughput"
        ),
    )
    # With one pattern the two approaches tie.
    assert rows[0]["multi_over_single"] == 1.0 or (
        0.9 < rows[0]["multi_over_single"] < 1.2
    )
    # Per-pattern mapping wins once patterns mix, and the win grows.
    assert rows[-1]["multi_over_single"] > 1.3
    advantages = [row["multi_over_single"] for row in rows]
    assert advantages[-1] > advantages[0]
