"""Figure 2: channel conflicts for different access patterns x mappings.

The illustrative example of Section 2.2: stride-1 and stride-16 streams
under (1) the default channel-interleaved mapping and (2) a mapping that
moves three low row bits next to the column bits.  Each (pattern,
mapping) cell reports how many distinct channels serve 32 consecutive
accesses — the red "conflict" cells of the figure are the ones stuck on
one or two channels.
"""

from __future__ import annotations

import numpy as np

from repro.core import PermutationMapping, identity_mapping
from repro.hbm import decode_trace, hbm2_config
from repro.system.reporting import format_table

CFG = hbm2_config()


def mapping2() -> PermutationMapping:
    """Feed three higher address bits into the channel LSBs.

    The paper's second example mapping splits the row field and slots
    its low bits next to the channel; the effect being illustrated is
    that channel selects now come from bits a stride-16 stream flips.
    """
    source = list(range(CFG.address_bits))
    for channel_bit, high_bit in zip([6, 7, 8], [11, 12, 13]):
        source[channel_bit], source[high_bit] = (
            source[high_bit],
            source[channel_bit],
        )
    return PermutationMapping(source)


def channels_used(mapping, stride_lines: int, count: int = 32) -> int:
    pa = np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)
    ha = np.asarray(mapping.apply(pa))
    return int(np.unique(decode_trace(ha, CFG).channel).size)


def run_fig02():
    mappings = {
        "mapping1 (default)": identity_mapping(CFG.address_bits),
        "mapping2 (row bits low)": mapping2(),
    }
    rows = []
    for stride in (1, 16):
        row: dict[str, object] = {"access_pattern": f"stride-{stride}"}
        for name, mapping in mappings.items():
            row[name] = channels_used(mapping, stride)
        rows.append(row)
    return rows


def test_fig02_mapping_pattern_interaction(benchmark, record):
    rows = benchmark.pedantic(run_fig02, rounds=1, iterations=1)
    record(
        "fig02_mapping_conflicts",
        format_table(
            rows,
            title="Fig 2: distinct channels serving 32 consecutive accesses",
            float_format="{:.0f}",
        ),
    )
    table = {row["access_pattern"]: row for row in rows}
    # Mapping 1 spreads stride-1 but collapses stride-16.
    assert table["stride-1"]["mapping1 (default)"] == 32
    assert table["stride-16"]["mapping1 (default)"] <= 2
    # Mapping 2 does the reverse.
    assert table["stride-16"]["mapping2 (row bits low)"] >= 8
    assert table["stride-1"]["mapping2 (row bits low)"] <= 8
