"""Figure 1: HBM throughput vs channel count and row-buffer hit rate.

The paper's point: throughput grows *linearly* with the number of
channels exploited (CLP) but only *sub-linearly* with row-buffer
locality (RLP), which is why address mapping should spend its best bits
on channels.
"""

from __future__ import annotations

import numpy as np

from repro.hbm import WindowModel, hbm2_config
from repro.system.reporting import format_table

CFG = hbm2_config()
LAYOUT = CFG.layout()
ACCESSES = 16_384


def channel_sweep_trace(channels_used: int) -> np.ndarray:
    """Streaming trace confined to the first ``channels_used`` channels."""
    index = np.arange(ACCESSES, dtype=np.uint64)
    channel = index % np.uint64(channels_used)
    column = (index // np.uint64(channels_used)) % np.uint64(4)
    row = index // np.uint64(channels_used * 4)
    return np.asarray(
        LAYOUT.encode(
            channel=channel,
            column=column,
            bank=(row % np.uint64(8)),
            row=row // np.uint64(8),
        ),
        dtype=np.uint64,
    )


def hit_rate_trace(columns_per_row: int) -> np.ndarray:
    """Single-bank trace touching ``columns_per_row`` columns per row."""
    index = np.arange(ACCESSES // 4, dtype=np.uint64)
    column = index % np.uint64(columns_per_row)
    row = index // np.uint64(columns_per_row)
    return np.asarray(
        LAYOUT.encode(channel=np.uint64(0), column=column, row=row),
        dtype=np.uint64,
    )


def run_fig01():
    model = WindowModel(CFG, max_inflight=256)
    channel_rows = []
    for channels in (1, 2, 4, 8, 16, 32):
        stats = model.simulate(channel_sweep_trace(channels))
        channel_rows.append(
            {
                "channels": channels,
                "throughput_gbps": stats.throughput_gbps,
                "hit_rate": stats.row_hit_rate,
            }
        )
    rlp_rows = []
    for columns in (1, 2, 4):
        stats = model.simulate(hit_rate_trace(columns))
        rlp_rows.append(
            {
                "columns_per_row": columns,
                "throughput_gbps": stats.throughput_gbps,
                "hit_rate": stats.row_hit_rate,
            }
        )
    return channel_rows, rlp_rows


def test_fig01_clp_scales_linearly_rlp_sublinearly(benchmark, record):
    channel_rows, rlp_rows = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    text = format_table(
        channel_rows, title="Fig 1(a): throughput vs channels used"
    )
    text += "\n\n" + format_table(
        rlp_rows, title="Fig 1(b): throughput vs columns used per row (1 channel)"
    )
    record("fig01_clp_vs_rlp", text)

    # CLP scaling is (near-)linear.
    t = {row["channels"]: row["throughput_gbps"] for row in channel_rows}
    assert t[32] / t[1] > 16
    assert t[32] / t[16] > 1.5
    # RLP scaling is positive but clearly sub-linear.
    r = {row["columns_per_row"]: row["throughput_gbps"] for row in rlp_rows}
    assert r[4] > r[1]
    assert r[4] / r[1] < 4
