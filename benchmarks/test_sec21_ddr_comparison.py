"""Section 2.1's DDR-vs-HBM contrast: why SDAM targets 3D memory.

The paper's background: DDR has few channels and large rows (low CLP,
high RLP), so channel-aware remapping has little to win there; HBM's
32 small-row channels are where mapping choice dominates.  We run the
same strided workload on both devices and compare (a) peak bandwidth,
(b) how much a bad stride costs, (c) how much an SDAM-style remap
recovers.
"""

from __future__ import annotations

import numpy as np

from repro.core import ChunkGeometry, select_window_permutation
from repro.core.amu import AddressMappingUnit
from repro.hbm import WindowModel, ddr4_config, hbm2_config
from repro.profiling.bfrv import window_flip_rates
from repro.system.reporting import format_table

ACCESSES = 16_384
BAD_STRIDE = 32


def run_comparison():
    rows = []
    for config in (hbm2_config(), ddr4_config()):
        model = WindowModel(config, max_inflight=256)
        geometry = ChunkGeometry(total_bytes=min(config.total_bytes, 8 << 30))
        stream = (
            np.arange(ACCESSES, dtype=np.uint64) * np.uint64(64)
        ) % np.uint64(geometry.chunk_bytes * 4)
        strided = (
            np.arange(ACCESSES, dtype=np.uint64) * np.uint64(BAD_STRIDE * 64)
        ) % np.uint64(geometry.chunk_bytes * 4)
        peak = model.simulate(stream).throughput_gbps
        bad = model.simulate(strided).throughput_gbps
        # SDAM-style remap of the strided pattern on this device.
        rates = window_flip_rates(strided, geometry.window_slice())
        perm = select_window_permutation(rates, config.layout(), geometry)
        amu = AddressMappingUnit(geometry.window_bits)
        mapping = amu.full_mapping(perm, geometry, config.address_bits)
        remapped = model.simulate(np.asarray(mapping.apply(strided)))
        rows.append(
            {
                "device": config.name,
                "channels": config.num_channels,
                "row_bytes": config.row_bytes,
                "stream_gbps": peak,
                f"stride{BAD_STRIDE}_gbps": bad,
                "collapse_factor": peak / bad,
                "remapped_gbps": remapped.throughput_gbps,
                "sdam_recovery": remapped.throughput_gbps / bad,
            }
        )
    return rows


def test_sec21_ddr_vs_hbm(benchmark, record):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record(
        "sec21_ddr_comparison",
        format_table(
            rows,
            title="Section 2.1: DDR4 vs HBM2 — where address mapping matters",
        ),
    )
    hbm = rows[0]
    ddr = rows[1]
    # Section 2.1 headline numbers: ~2x peak bandwidth gap per device
    # class here (HBM 204.8 vs DDR 102.4 GB/s).
    assert hbm["stream_gbps"] > 1.8 * ddr["stream_gbps"]
    # A bad stride costs HBM far more than DDR (8x more channels to idle).
    assert hbm["collapse_factor"] > 2 * ddr["collapse_factor"]
    # And SDAM-style remapping recovers far more on HBM than DDR.
    assert hbm["sdam_recovery"] > 2 * ddr["sdam_recovery"]