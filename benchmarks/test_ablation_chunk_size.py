"""Ablation: the chunk-size trade-off of Section 4.

The paper picks 2 MB chunks to balance CMT storage against internal
fragmentation.  This ablation sweeps chunk sizes and reports, for each:
the CMT two-level storage, the worst-case fragmentation bound (one
partially-filled chunk per access pattern, 256 patterns), and whether
the shuffled window still covers the stride range of interest.
"""

from __future__ import annotations

from repro.core import ChunkGeometry, ChunkMappingTable
from repro.system.reporting import format_table

GiB = 1024**3
MiB = 1024**2
KiB = 1024
PATTERNS = 256  # supported concurrent mappings
LARGEST_STRIDE_BYTES = 32 * 64 * 32  # stride-32 across 32 channels


def run_ablation():
    rows = []
    for chunk_bytes in (256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB):
        geometry = ChunkGeometry(total_bytes=8 * GiB, chunk_bytes=chunk_bytes)
        cmt = ChunkMappingTable(
            num_chunks=geometry.num_chunks,
            window_bits=geometry.window_bits,
            max_mappings=PATTERNS,
        )
        waste_fraction = min(PATTERNS, geometry.num_chunks) / geometry.num_chunks
        rows.append(
            {
                "chunk": f"{chunk_bytes // KiB}KiB"
                if chunk_bytes < MiB
                else f"{chunk_bytes // MiB}MiB",
                "chunks": geometry.num_chunks,
                "window_bits": geometry.window_bits,
                "cmt_kb": cmt.storage_bits_two_level() / 8 / 1000,
                "frag_bound_pct": 100 * waste_fraction,
                "covers_strides": geometry.chunk_bytes >= LARGEST_STRIDE_BYTES,
            }
        )
    return rows


def test_ablation_chunk_size(benchmark, record):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record(
        "ablation_chunk_size",
        format_table(
            rows,
            title="Ablation: chunk size vs CMT storage vs fragmentation "
            "(Section 4 picks 2MiB)",
        ),
    )
    table = {row["chunk"]: row for row in rows}
    # The paper's operating point: 4096 chunks, 6.25% worst-case waste.
    assert table["2MiB"]["chunks"] == 4096
    assert table["2MiB"]["frag_bound_pct"] == 6.25
    assert table["2MiB"]["covers_strides"]
    # Smaller chunks inflate the CMT; larger chunks inflate fragmentation.
    assert table["256KiB"]["cmt_kb"] > table["2MiB"]["cmt_kb"]
    assert table["8MiB"]["frag_bound_pct"] > table["2MiB"]["frag_bound_pct"]
    # All candidate sizes keep fragmentation monotone in chunk size.
    fracs = [row["frag_bound_pct"] for row in rows]
    assert fracs == sorted(fracs)
