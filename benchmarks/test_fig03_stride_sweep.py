"""Figure 3: (a) throughput vs stride under the default mapping;
(b) bit-flip-rate distribution per stride.

The paper's motivating experiment: with the boot-time mapping the
throughput collapses ~20x as the stride grows from 1 to 16..32 cache
lines, and the flip-rate peak (the bit that should select channels)
marches up the address with the stride.
"""

from __future__ import annotations

import numpy as np

from repro.hbm import WindowModel, hbm2_config
from repro.profiling.bfrv import bit_flip_rate_vector
from repro.system.reporting import format_table

CFG = hbm2_config()
ACCESSES = 16_384
STRIDES = (1, 2, 4, 8, 16, 32)


def stride_trace(stride_lines: int) -> np.ndarray:
    pa = np.arange(ACCESSES, dtype=np.uint64) * np.uint64(stride_lines * 64)
    return pa % np.uint64(CFG.total_bytes)


def run_fig03():
    model = WindowModel(CFG, max_inflight=256)
    throughput_rows = []
    flip_rows = []
    for stride in STRIDES:
        trace = stride_trace(stride)
        stats = model.simulate(trace)
        throughput_rows.append(
            {
                "stride": stride,
                "throughput_gbps": stats.throughput_gbps,
                "channels": stats.channels_touched,
            }
        )
        rates = bit_flip_rate_vector(trace, num_bits=10, bit_offset=6)
        row: dict[str, object] = {"stride": stride}
        for bit in range(10):
            row[f"bit{6 + bit}"] = rates[bit]
        flip_rows.append(row)
    return throughput_rows, flip_rows


def test_fig03_stride_collapse_and_flip_peaks(benchmark, record):
    throughput_rows, flip_rows = benchmark.pedantic(
        run_fig03, rounds=1, iterations=1
    )
    text = format_table(
        throughput_rows,
        title="Fig 3(a): throughput vs stride, default mapping",
        float_format="{:.1f}",
    )
    text += "\n\n" + format_table(
        flip_rows, title="Fig 3(b): bit flip rate per address bit"
    )
    record("fig03_stride_sweep", text)

    t = {row["stride"]: row["throughput_gbps"] for row in throughput_rows}
    # Paper: "throughput drops sharply by 20x" toward the worst stride.
    assert t[1] / t[32] > 15
    # Throughput decays monotonically with stride.
    values = [t[s] for s in STRIDES]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Flip-rate peak moves one bit per stride doubling.
    for row in flip_rows:
        stride = row["stride"]
        peak_bit = max(range(6, 16), key=lambda b: row[f"bit{b}"])
        assert peak_bit == 6 + int(np.log2(stride))
