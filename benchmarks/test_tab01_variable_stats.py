"""Table 1: variable-level statistics of SPEC2006 and PARSEC.

Two views are produced: the *nominal* statistics each application model
was calibrated to (these must equal the paper's Table 1 by
construction), and the statistics the profiler actually recovers from a
run (major count via the 80 % rule on the external trace).
"""

from __future__ import annotations

from repro.system import Machine, system_by_key
from repro.system.reporting import format_table
from repro.workloads import parsec_suite, spec2006_suite
from repro.workloads.models import SCALE

from conftest import is_quick


def run_tab01():
    workloads = spec2006_suite() + parsec_suite()
    if is_quick():
        workloads = workloads[:4]
    machine = Machine(system_by_key("bs_dm"))
    nominal_rows = []
    profiled_rows = []
    for workload in workloads:
        nominal_rows.append(workload.table1_nominal())
        profile = machine.profile(workload)
        row = profile.table1_row()
        # Undo the footprint scaling for an apples-to-apples size view.
        row["avg_major_size_mb"] /= SCALE
        row["min_major_size_mb"] /= SCALE
        profiled_rows.append(row)
    return nominal_rows, profiled_rows


def test_tab01_variable_statistics(benchmark, record):
    nominal_rows, profiled_rows = benchmark.pedantic(
        run_tab01, rounds=1, iterations=1
    )
    text = format_table(
        nominal_rows,
        title="Table 1 (nominal calibration = paper values)",
        float_format="{:.1f}",
    )
    text += "\n\n" + format_table(
        profiled_rows,
        title="Table 1 (recovered by profiling a run; sizes un-scaled,"
        " clamped at allocation floor/cap)",
        float_format="{:.1f}",
    )
    record("tab01_variable_stats", text)

    by_name = {row["benchmark"]: row for row in nominal_rows}
    if "mcf" in by_name:
        assert by_name["mcf"]["num_major_variables"] == 3
        assert by_name["mcf"]["avg_major_size_mb"] == 1215
    if "omnetpp" in by_name:
        assert by_name["omnetpp"]["num_variables"] == 9400
        assert by_name["omnetpp"]["num_major_variables"] == 65
    # The profiler finds a non-trivial major set for every application.
    for row in profiled_rows:
        assert row["num_major_variables"] >= 1
        assert row["num_variables"] >= row["num_major_variables"]
