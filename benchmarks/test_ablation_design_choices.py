"""Ablations for two implementation choices called out in DESIGN.md.

1. **FR-FCFS reorder window** (memory-controller scheduling): with
   in-order service, interleaved streams thrash row buffers; a modest
   lookahead recovers most of the locality.
2. **Chunk colouring** (physical allocator): without staggering each
   mapping's frames inside its chunks, every per-variable heap starts
   at chunk offset 0 and the leading pages of all mappings pile into
   one DRAM bank.
"""

from __future__ import annotations

import numpy as np

from repro.hbm import WindowModel, hbm2_config
from repro.system import Machine, system_by_key
from repro.system.reporting import format_table
from repro.workloads import MixedStrideWorkload, parsec_workload

CFG = hbm2_config()


def interleaved_stream_trace() -> np.ndarray:
    """Two streams alternating rows in the same banks."""
    a = np.arange(4096, dtype=np.uint64) * np.uint64(64)
    b = a + np.uint64(1 << 20)
    return np.stack([a, b], axis=1).reshape(-1)


def run_reorder_ablation():
    trace = interleaved_stream_trace()
    rows = []
    for window in (1, 2, 4, 8, 16):
        stats = WindowModel(CFG, reorder_window=window).simulate(trace)
        rows.append(
            {
                "reorder_window": window,
                "row_hit_rate": stats.row_hit_rate,
                "throughput_gbps": stats.throughput_gbps,
            }
        )
    return rows


def run_colouring_ablation():
    workload = parsec_workload("vips")
    rows = []
    for colours in (1, 8):
        baseline = Machine(
            system_by_key("bs_dm"), chunk_colours=colours
        ).run(workload)
        sdam = Machine(
            system_by_key("sdm_bsm_ml32"), chunk_colours=colours
        ).run(workload)
        rows.append(
            {
                "chunk_colours": colours,
                "sdam_speedup": baseline.time_ns / sdam.time_ns,
                "sdam_busiest_channel_us": float(
                    sdam.stats.per_channel_busy_ns.max() / 1e3
                ),
            }
        )
    return rows


def test_ablation_scheduling_and_colouring(benchmark, record):
    reorder_rows = benchmark.pedantic(
        run_reorder_ablation, rounds=1, iterations=1
    )
    colour_rows = run_colouring_ablation()
    text = format_table(
        reorder_rows,
        title="Ablation: FR-FCFS reorder window vs row-buffer locality",
    )
    text += "\n\n" + format_table(
        colour_rows, title="Ablation: chunk colouring (vips, SDM+BSM+ML32)"
    )
    record("ablation_design_choices", text)

    hits = {row["reorder_window"]: row["row_hit_rate"] for row in reorder_rows}
    # In-order service thrashes; lookahead recovers locality.
    assert hits[1] < 0.1
    assert hits[8] > 0.5
    assert hits[8] >= hits[2]
    # Colouring must not hurt, and should relieve the hottest channel.
    with_colour = colour_rows[1]
    without = colour_rows[0]
    assert with_colour["sdam_speedup"] >= without["sdam_speedup"] * 0.97
    assert (
        with_colour["sdam_busiest_channel_us"]
        <= without["sdam_busiest_channel_us"] * 1.1
    )
