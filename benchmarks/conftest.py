"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
writes its output under ``benchmarks/results/`` (also echoed to stdout
with ``pytest -s``).  Set ``REPRO_BENCH_QUICK=1`` to run reduced sweeps
while iterating.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def is_quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record(results_dir):
    """Write a named artefact and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n(saved to {path})")

    return _record
