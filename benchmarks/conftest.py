"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
writes its output under ``benchmarks/results/`` (also echoed to stdout
with ``pytest -s``).  Set ``REPRO_BENCH_QUICK=1`` to run reduced
sweeps while iterating, ``REPRO_BENCH_WORKERS=N`` to fan sweep cells
out over worker processes, and ``REPRO_BENCH_CACHE=dir`` to persist
stage outputs (profiles, selections, results) between benchmark runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def is_quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def sweep_kwargs() -> dict:
    """Engine knobs for the sweep-driving benchmarks."""
    kwargs: dict = {}
    workers = os.environ.get("REPRO_BENCH_WORKERS", "")
    if workers:
        kwargs["max_workers"] = int(workers)
    cache = os.environ.get("REPRO_BENCH_CACHE", "")
    if cache:
        kwargs["cache_dir"] = cache
    return kwargs


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record(results_dir):
    """Write a named artefact and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n(saved to {path})")

    return _record
