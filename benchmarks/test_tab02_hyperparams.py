"""Table 2: training hyper-parameters of the embedding LSTM.

Checks the paper-scale configuration exposed by the library and reports
both it and the laptop-scale defaults used in the other benchmarks.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.ml import AutoencoderConfig, paper_hyperparameters
from repro.system.reporting import format_table


def run_tab02():
    paper = paper_hyperparameters()
    default = AutoencoderConfig()
    rows = []
    for field in (
        "sequence_length",
        "hidden_dim",
        "delta_embed_dim",
        "vid_embed_dim",
        "learning_rate",
        "cluster_weight",
        "pretrain_steps",
        "joint_steps",
    ):
        rows.append(
            {
                "hyperparameter": field,
                "paper": getattr(paper, field),
                "default": getattr(default, field),
            }
        )
    return rows, asdict(paper)


def test_tab02_hyperparameters(benchmark, record):
    rows, paper = benchmark.pedantic(run_tab02, rounds=1, iterations=1)
    record(
        "tab02_hyperparams",
        format_table(rows, title="Table 2: DL hyper-parameters", float_format="{}"),
    )
    # Table 2 literal values.
    assert paper["sequence_length"] == 32
    assert paper["learning_rate"] == 0.001
    assert paper["cluster_weight"] == 0.01  # lambda
    assert paper["hidden_dim"] == 256  # "256x2 LSTM" hidden width
    assert paper["pretrain_steps"] + paper["joint_steps"] == 500_000
