"""Table 4: lines of code changed per software feature.

The paper reports how small the Linux/glibc modifications are (131 LOC
VM allocator, 97 physical allocator, 98 driver, 33 misc).  The analogue
here is the size of each substrate module implementing that feature —
reported for the same four categories, with the paper's numbers beside
them for reference.
"""

from __future__ import annotations

from pathlib import Path

import repro.mem as mem_pkg
from repro.system.reporting import format_table

PAPER_LOC = {
    "VM allocator": 131,
    "PM allocator": 97,
    "Driver": 98,
    "Miscellaneous": 33,
}

FEATURE_MODULES = {
    "VM allocator": ["malloc.py", "virtual.py"],
    "PM allocator": ["physical.py", "buddy.py"],
    "Driver": ["kernel.py"],
    "Miscellaneous": ["__init__.py"],
}


def count_loc(path: Path) -> int:
    """Non-blank, non-comment source lines."""
    lines = path.read_text().splitlines()
    return sum(
        1
        for line in lines
        if line.strip() and not line.strip().startswith("#")
    )


def run_tab04():
    package_dir = Path(mem_pkg.__file__).parent
    rows = []
    for feature, modules in FEATURE_MODULES.items():
        loc = sum(count_loc(package_dir / module) for module in modules)
        rows.append(
            {
                "feature": feature,
                "paper_loc_changed": PAPER_LOC[feature],
                "our_module_loc": loc,
                "modules": "+".join(modules),
            }
        )
    return rows


def test_tab04_loc_changed(benchmark, record):
    rows = benchmark.pedantic(run_tab04, rounds=1, iterations=1)
    record(
        "tab04_loc_changed",
        format_table(
            rows,
            title=(
                "Table 4: software modification size (paper = diff vs "
                "Linux/glibc; ours = full from-scratch modules)"
            ),
            float_format="{:.0f}",
        ),
    )
    # Every feature exists and is modest in size — the paper's point is
    # that the software support is small.
    for row in rows:
        assert row["our_module_loc"] > 0
        assert row["our_module_loc"] < 1500
    assert sum(PAPER_LOC.values()) == 359
