"""Figure 14: speedup sensitivity to HBM frequency and core count.

Section 7.4: stressing the memory system — slowing the HBM to a quarter
of its frequency, or adding cores — increases SDAM's advantage (the
paper reports +19 % at quarter frequency and 1.27x -> 1.32x from 1 to 4
cores), because contention grows with pressure.
"""

from __future__ import annotations

from repro.ml import AutoencoderConfig
from repro.system import core_sweep, frequency_sweep, system_by_key
from repro.system.reporting import format_series
from repro.workloads import parsec_workload, spec2006_workload

from conftest import is_quick, sweep_kwargs

DL_CONFIG = AutoencoderConfig(pretrain_steps=60, joint_steps=30)


def workloads():
    names = ["libquantum", "omnetpp"] if is_quick() else [
        "libquantum",
        "omnetpp",
        "mcf",
        "h264ref",
    ]
    loads = [spec2006_workload(name) for name in names]
    if not is_quick():
        loads.append(parsec_workload("vips"))
    return loads


def run_fig14():
    system = system_by_key("sdm_bsm_ml32")
    baseline = system_by_key("bs_dm")
    kwargs = dict(dl_config=DL_CONFIG, **sweep_kwargs())
    freq = frequency_sweep(
        workloads(),
        system,
        baseline,
        scales=(1.0, 0.5, 0.25),
        **kwargs,
    )
    cores = core_sweep(
        workloads(),
        system,
        baseline,
        core_counts=(1, 2, 4),
        **kwargs,
    )
    return freq, cores


def test_fig14_memory_pressure_sensitivity(benchmark, record):
    freq, cores = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    text = format_series(
        freq,
        "hbm_frequency_scale",
        "geomean_speedup",
        title="Fig 14(a): SDAM speedup vs HBM frequency",
    )
    text += "\n\n" + format_series(
        cores, "cores", "geomean_speedup", title="Fig 14(b): speedup vs cores"
    )
    record("fig14_sensitivity", text)

    # Slower memory -> bigger SDAM win (paper: +19% at quarter speed).
    assert freq[0.25] > freq[1.0]
    # More cores -> at least as big a win (paper: 1.27x -> 1.32x).
    assert cores[4] >= cores[1] * 0.98
    assert all(value > 0.95 for value in freq.values())
