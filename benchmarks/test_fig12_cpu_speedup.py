"""Figure 12: CPU speedups over BS+DM for (a) standard benchmarks
(SPEC2006 + PARSEC) and (b) the data-intensive benchmarks, across all
seven systems with 4- and 32-cluster ML/DL variants.

Methodology follows Section 7.3/7.4: profiling and evaluation use
different inputs; the global BS+BSM mapping is selected from the
combined workload-mix profile.  Expected shapes: BS+BSM barely moves,
BS+HM earns a modest broad win, SDAM variants win more, data-intensive
gains exceed standard-benchmark gains.
"""

from __future__ import annotations

import numpy as np

from repro.ml import AutoencoderConfig
from repro.system import run_suite, standard_systems
from repro.system.reporting import format_table
from repro.workloads import data_intensive_suite, parsec_suite, spec2006_suite

from conftest import is_quick, sweep_kwargs

# Laptop-scale DL config: same architecture, fewer steps.
DL_CONFIG = AutoencoderConfig(pretrain_steps=60, joint_steps=30)


def suites():
    standard = spec2006_suite() + parsec_suite()
    data_intensive = data_intensive_suite()
    if is_quick():
        standard = standard[:3]
        data_intensive = data_intensive[:2]
    return standard, data_intensive


def run_fig12():
    systems = standard_systems()
    standard, data_intensive = suites()
    kwargs = dict(dl_config=DL_CONFIG, **sweep_kwargs())
    std_table = run_suite(standard, systems=systems, **kwargs)
    di_table = run_suite(data_intensive, systems=systems, **kwargs)
    return std_table, di_table


def render(table, title: str) -> str:
    rows = table.to_rows()
    geo: dict[str, object] = {"workload": "GEOMEAN"}
    for system in table.systems():
        geo[system] = table.geomean(system)
    rows.append(geo)
    return format_table(rows, title=title)


def test_fig12_cpu_speedups(benchmark, record):
    std_table, di_table = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    text = render(std_table, "Fig 12(a): CPU speedup, standard benchmarks")
    text += "\n\n" + render(
        di_table, "Fig 12(b): CPU speedup, data-intensive benchmarks"
    )
    record("fig12_cpu_speedup", text)

    # Shape checks against the paper's ordering (not absolute numbers).
    std = {s: std_table.geomean(s) for s in std_table.systems()}
    di = {s: di_table.geomean(s) for s in di_table.systems()}

    # No system loses badly to the baseline on average.
    assert all(v > 0.85 for v in std.values())
    best_sdam = max(v for k, v in std.items() if k.startswith("SDM"))
    best_sdam_di = max(v for k, v in di.items() if k.startswith("SDM"))
    if is_quick():
        return  # threshold shapes need the full suites

    # The suite-mix global bit-shuffle barely helps (paper: 1.01x).
    assert std["BS+BSM"] <= std["BS+HM"]
    # Hashing earns a modest broad win (paper: 1.14x).
    assert 1.0 <= std["BS+HM"] < 1.6
    # SDAM with per-variable mappings beats every global baseline.
    assert best_sdam >= std["BS+HM"]
    assert best_sdam > 1.05
    # Data-intensive benchmarks gain more than standard ones (paper:
    # 1.84x vs 1.41x for the best system).
    assert best_sdam_di > best_sdam
