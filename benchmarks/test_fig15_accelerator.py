"""Figure 15: speedups when the data-intensive benchmarks run on
near-memory accelerators.

Section 7.4's final result: accelerators benefit more than CPUs (2.58x
for the best system vs 1.84x on CPU) because (i) they sustain far more
concurrent memory accesses and (ii) their tiny scratch buffers let
almost every access reach external memory.  We run the same eight
workloads on the accelerator engine and compare against the CPU run.
"""

from __future__ import annotations

from repro.ml import AutoencoderConfig
from repro.system import run_suite, standard_systems
from repro.system.reporting import format_table
from repro.workloads import data_intensive_suite

from conftest import is_quick

DL_CONFIG = AutoencoderConfig(pretrain_steps=60, joint_steps=30)


def run_fig15():
    workloads = data_intensive_suite()
    if is_quick():
        workloads = workloads[:3]
    systems = standard_systems(cluster_counts=(32,))
    accel = run_suite(
        workloads, systems=systems, engine="accelerator", dl_config=DL_CONFIG
    )
    cpu = run_suite(workloads, systems=systems, dl_config=DL_CONFIG)
    return accel, cpu


def test_fig15_accelerator_speedups(benchmark, record):
    accel, cpu = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    rows = accel.to_rows()
    geo: dict[str, object] = {"workload": "GEOMEAN"}
    for system in accel.systems():
        geo[system] = accel.geomean(system)
    rows.append(geo)
    text = format_table(
        rows, title="Fig 15: accelerator speedups (baseline: accel BS+DM)"
    )
    comparison = [
        {
            "system": system,
            "accelerator": accel.geomean(system),
            "cpu": cpu.geomean(system),
        }
        for system in accel.systems()
    ]
    text += "\n\n" + format_table(
        comparison, title="Accelerator vs CPU geomean speedup"
    )
    record("fig15_accelerator", text)

    best_accel = max(
        accel.geomean(s) for s in accel.systems() if s.startswith("SDM")
    )
    best_cpu = max(
        cpu.geomean(s) for s in cpu.systems() if s.startswith("SDM")
    )
    # Accelerators gain at least as much as CPUs (paper: 2.58x vs 1.84x).
    assert best_accel >= best_cpu * 0.98
    assert best_accel > 1.05
