"""Figure 13: profiling time, K-Means vs DL-assisted K-Means.

The paper measures the offline mapping-selection cost per application:
K-Means is cheap (0.3 min at 4 patterns, 2 min at 32 — it needs more
iterations for more clusters), DL-assisted K-Means is an order of
magnitude slower (26-29 min) and nearly insensitive to the cluster
count (training dominates).  The same relative shape must hold here.
"""

from __future__ import annotations

from repro.core.selection import select_mappings_dl, select_mappings_kmeans
from repro.hbm import hbm2_config
from repro.core import ChunkGeometry
from repro.ml import AutoencoderConfig
from repro.system import Machine, system_by_key
from repro.system.reporting import format_table
from repro.workloads import spec2006_workload

from conftest import is_quick

GEO = ChunkGeometry()
LAYOUT = hbm2_config().layout()
DL_CONFIG = AutoencoderConfig(pretrain_steps=60, joint_steps=30)


def run_fig13():
    # omnetpp: the paper's many-variable stress case (65 majors).
    workload = spec2006_workload("omnetpp" if not is_quick() else "bzip2")
    machine = Machine(system_by_key("bs_dm"))
    profile = machine.profile(workload)
    rows = []
    for clusters in (4, 32):
        kmeans = select_mappings_kmeans(
            profile, clusters, LAYOUT, GEO, coverage=0.95
        )
        dl = select_mappings_dl(
            profile, clusters, LAYOUT, GEO, config=DL_CONFIG, coverage=0.95
        )
        rows.append(
            {
                "patterns": clusters,
                "kmeans_seconds": kmeans.elapsed_seconds,
                "dl_seconds": dl.elapsed_seconds,
                "dl_over_kmeans": dl.elapsed_seconds / kmeans.elapsed_seconds,
            }
        )
    return rows


def test_fig13_profiling_time(benchmark, record):
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    record(
        "fig13_profiling_time",
        format_table(
            rows,
            title="Fig 13: mapping-selection time (K-Means vs DL-assisted)",
            float_format="{:.3f}",
        ),
    )
    for row in rows:
        # DL-assisted selection costs an order of magnitude more.
        assert row["dl_over_kmeans"] > 5
    # K-Means slows with more clusters; DL is training-dominated and
    # comparatively insensitive (paper: 26 min vs 29 min).
    kmeans_ratio = rows[1]["kmeans_seconds"] / rows[0]["kmeans_seconds"]
    dl_ratio = rows[1]["dl_seconds"] / rows[0]["dl_seconds"]
    assert dl_ratio < 2.0
    assert kmeans_ratio > dl_ratio * 0.5  # k-means is the k-sensitive one
