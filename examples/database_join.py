"""In-memory joins under SDAM: hash join vs sort-merge join.

The two joins stress the memory system in opposite ways — the hash join
mixes streaming relation scans with random probes into padded hash
buckets, the sort-merge join produces doubling-stride passes — so their
best address mappings differ per data structure.  This example runs
both on the CPU and on the near-memory accelerator model, showing the
paper's observation that accelerators (more concurrency, no cache)
benefit more.

Run:  python examples/database_join.py
"""

from repro.system import Machine, system_by_key
from repro.system.reporting import format_table
from repro.workloads import HashJoinWorkload, MergeJoinWorkload


def run(workload, engine: str) -> list[dict]:
    rows = []
    baseline_time = None
    for key in ("bs_dm", "bs_hm", "sdm_bsm_ml4"):
        machine = Machine(system_by_key(key), engine=engine)
        result = machine.run(workload)
        if baseline_time is None:
            baseline_time = result.time_ns
        rows.append(
            {
                "engine": engine,
                "system": result.system,
                "throughput_gbps": result.stats.throughput_gbps,
                "external_accesses": result.stats.requests,
                "speedup": baseline_time / result.time_ns,
            }
        )
    return rows


def main() -> None:
    for workload in (HashJoinWorkload(), MergeJoinWorkload()):
        matches = workload.run_reference()
        print(f"{workload.name}: join produced {matches} matches")
        rows = run(workload, "cpu") + run(workload, "accelerator")
        print(format_table(rows, title=f"{workload.name} under SDAM"))
        cpu_speedup = rows[2]["speedup"]
        accel_speedup = rows[5]["speedup"]
        print(
            f"-> SDAM speedup: {cpu_speedup:.2f}x on CPU, "
            f"{accel_speedup:.2f}x on the accelerator\n"
        )


if __name__ == "__main__":
    main()
