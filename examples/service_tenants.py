"""Two isolated tenants on one mapping service.

The minimal serving setup: one deployment's immutable artifacts
(device model, geometry, shared plan cache), two tenants admitted with
their own mapping-budget namespaces, jobs drained concurrently.  Each
tenant's fingerprint depends only on its own spec, workload and
namespace — rerun either tenant alone and its fingerprint is
bit-identical (the property ``repro serve --selftest`` proves at
scale).

Run:  python examples/service_tenants.py
"""

import json

from repro.service import MappingService, SharedArtifacts, TenantSpec
from repro.workloads import MixedStrideWorkload, StridedCopyWorkload


def main() -> None:
    service = MappingService(shared=SharedArtifacts.create(backend="fast"))
    service.admit(
        TenantSpec("alice", system="sdm_bsm_ml4", quota=4, seed=1)
    )
    service.admit(TenantSpec("bob", system="sdm_bsm", quota=4, seed=2))

    service.submit(
        "alice",
        StridedCopyWorkload(stride_lines=16, accesses_per_thread=4000),
    )
    service.submit(
        "bob", MixedStrideWorkload(strides=(1, 8), accesses_per_stride=2000)
    )

    report = service.drain()

    for name, result in report.tenants.items():
        namespace = result.namespace
        stats = result.stats
        print(
            f"{name}: slots [{namespace.base}, {namespace.end}), "
            f"{stats.requests} requests, "
            f"{stats.throughput_gbps:.1f} GB/s"
        )
    cache = report.plan_cache
    print(
        f"shared plan cache: {cache['hits']} hits / "
        f"{cache['misses']} misses across both tenants"
    )

    fingerprints = report.fingerprints()
    assert fingerprints["alice"] != fingerprints["bob"]
    print("\nper-tenant fingerprints (distinct, deterministic):")
    for name, fingerprint in fingerprints.items():
        digest = json.dumps(fingerprint, sort_keys=True)
        print(f"  {name}: {len(digest)} bytes, namespace "
              f"{fingerprint['namespace']}")


if __name__ == "__main__":
    main()
