"""Tiered heterogeneous memory: a fast HBM tier in front of a slow tier.

The scenario `repro tier` gates in CI, at library level: a hot/cold
skewed workload whose footprint is four times the fast tier, run under
each swap policy plus an all-slow baseline.  After the cold-start sweep
the hot region begins in the slow tier, so a policy only wins by
actively promoting it — `smart` does (and refuses to thrash when the
skew is removed), `fast` thrashes, `slow` never migrates.

The second half shows the anchor property: with the slow tier disabled
(`fast_pages=None`, the default) a tiered machine's fingerprint is
bit-identical to the plain fast backend.

Run:  python examples/tiered_memory.py
"""

import json

from repro import api
from repro.hbm import hbm2_config
from repro.system.config import system_by_key
from repro.system.machine import Machine
from repro.tier import TieredBackend, available_policies
from repro.workloads import TieredPressureWorkload

MiB = 1024 * 1024


def main() -> None:
    hbm = hbm2_config()
    footprint = 4 * MiB
    fast_pages = (footprint // 4096) // 4  # fast tier holds a quarter

    workload = TieredPressureWorkload(
        footprint_bytes=footprint, hot_fraction=0.9, accesses=32768
    )
    ha = workload.trace({"arena": 0}, input_seed=0)[0].va

    print(f"skewed workload: {ha.size} accesses, "
          f"{footprint // 4096} pages, {fast_pages} fast")
    results = {}
    for policy in available_policies():
        backend = TieredBackend(
            hbm, policy=policy, fast_pages=fast_pages, wave_accesses=2048
        )
        stats = backend.simulate(ha)
        traffic = backend.last_traffic
        results[policy] = stats.makespan_ns
        print(f"  {policy:<6} {stats.makespan_ns / 1e6:6.2f} ms   "
              f"{traffic.fast_fraction:4.0%} fast, "
              f"{traffic.promotions} promotions, "
              f"{traffic.demotions} demotions")

    baseline = TieredBackend(hbm, policy="slow", fast_pages=0)
    slow_ns = baseline.simulate(ha).makespan_ns
    print(f"  all-slow {slow_ns / 1e6:5.2f} ms   "
          f"-> smart {slow_ns / results['smart']:.2f}x")

    # Slow tier disabled => bit-identical to the fast delegate.
    system = system_by_key("sdm_bsm_ml4")
    probe = api.mixed_stride_workload()
    fast = Machine(
        system, backend="fast", dl_config=api.QUICK_DL_CONFIG
    ).run(probe)
    tiered = Machine(
        system, backend="tiered", dl_config=api.QUICK_DL_CONFIG
    ).run(probe)
    same = json.dumps(fast.fingerprint(), sort_keys=True) == json.dumps(
        tiered.fingerprint(), sort_keys=True
    )
    print(f"slow tier disabled: fingerprints identical = {same}")
    print(f"tier traffic record: {tiered.tier_traffic.summary()}")


if __name__ == "__main__":
    main()
