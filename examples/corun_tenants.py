"""Multiprogramming on one SDAM machine: four tenants, one CMT.

The chunk-mapping table is a *global* resource (Section 4: "the
physical memory space ... is globally shared by all the processes"),
so co-running applications split the 256-mapping budget.  Since the
tenant-scoped refactor that split is explicit: each application is
admitted with a :class:`~repro.core.cmt.MappingNamespace` carved by
:func:`~repro.core.cmt.partition_budget`, and interning a mapping
outside the namespace's quota raises instead of silently crowding a
neighbour.  This example co-runs four applications with different
access characters, sweeps the per-application cluster budget, prints
the resulting budget partition, and shows the CMT never overflowing
while SDAM still pays off for the mix.

Run:  python examples/corun_tenants.py
"""

from repro.core.cmt import partition_budget
from repro.system.corun import CorunMachine
from repro.system.reporting import format_table
from repro.workloads import (
    HashJoinWorkload,
    MixedStrideWorkload,
    spec2006_workload,
)


def tenants():
    return [
        spec2006_workload("libquantum"),  # streaming-heavy
        spec2006_workload("mcf"),  # record/pointer-heavy
        HashJoinWorkload(),  # scan + random probes
        MixedStrideWorkload(strides=(4, 16), accesses_per_stride=4000),
    ]


def main() -> None:
    apps = tenants()
    print(f"co-running: {', '.join(w.name for w in apps)}\n")
    baseline = CorunMachine(use_sdam=False).run(apps)
    rows = [
        {
            "configuration": "shared BS+DM",
            "live_mappings": 1,
            "throughput_gbps": baseline.stats.throughput_gbps,
            "speedup": 1.0,
        }
    ]
    for budget in (1, 2, 4, 8):
        result = CorunMachine(clusters_per_app=budget).run(apps)
        rows.append(
            {
                "configuration": f"SDAM, {budget} clusters/app",
                "live_mappings": result.live_mappings,
                "throughput_gbps": result.stats.throughput_gbps,
                "speedup": baseline.time_ns / result.time_ns,
            }
        )
    print(format_table(rows, title="four tenants sharing one CMT"))
    # The partition the last sweep ran under: one namespace per app,
    # slot 0 (the boot identity) shared by everyone.
    partition = partition_budget(
        {f"app{i}": 8 for i in range(len(apps))}, max_mappings=256
    )
    print("\nbudget partition at 8 clusters/app:")
    for name, namespace in partition.items():
        print(
            f"  {name}: slots [{namespace.base}, {namespace.end}) "
            f"of 256 (quota {namespace.capacity})"
        )
    print(
        "\nEven one mapping per tenant recovers most of the benefit — the\n"
        "paper's argument that a 256-entry CMT comfortably serves many\n"
        "co-running applications."
    )


if __name__ == "__main__":
    main()
