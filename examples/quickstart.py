"""Quickstart: run one workload under every system configuration.

Builds the paper's comparison in ~20 lines: a four-thread data copy
mixing four strides (the Fig. 4 / Fig. 11 scenario), executed on the
baseline fixed mapping, the two hardware-only alternatives, and SDAM
with and without ML-based mapping selection.

Run:  python examples/quickstart.py
"""

from repro.ml import AutoencoderConfig
from repro.system import Machine, standard_systems
from repro.system.reporting import format_table
from repro.workloads import MixedStrideWorkload


def main() -> None:
    workload = MixedStrideWorkload(strides=(1, 4, 8, 16))
    dl_config = AutoencoderConfig(pretrain_steps=60, joint_steps=30)

    rows = []
    baseline_time = None
    for system in standard_systems(cluster_counts=(4,)):
        machine = Machine(system, dl_config=dl_config)
        result = machine.run(workload)
        if baseline_time is None:
            baseline_time = result.time_ns
        rows.append(
            {
                "system": system.label,
                "throughput_gbps": result.stats.throughput_gbps,
                "clp_utilisation": result.stats.clp_utilization,
                "channels": result.stats.channels_touched,
                "speedup": baseline_time / result.time_ns,
            }
        )
    print(
        format_table(
            rows,
            title=f"{workload.name}: four threads, four access patterns",
        )
    )
    print(
        "\nSDAM gives each stride's variables their own AMU mapping, so\n"
        "every stream spreads across all 32 HBM channels at once."
    )


if __name__ == "__main__":
    main()
