"""Programmer-directed SDAM: hand-picked mappings, no profiling.

Section 6.2's first paragraph: "for programs with simple repetitive
data access such as element size and stride, programmers can identify
the access pattern and select the address mapping directly".  This
example drives the low-level API end to end:

* ``add_addr_map`` registers a hand-built AMU window permutation;
* ``malloc(size, mapping_id)`` places a buffer in matching chunks;
* the kernel programs the CMT when chunks are acquired;
* the AMU/CMT models report their hardware cost (Table 3);
* guard rows demonstrate the row-hammer mitigation sketched in Sec. 4.

Run:  python examples/custom_mapping.py
"""

import numpy as np

from repro.core import (
    ChunkGeometry,
    SDAMController,
    amu_area_report,
    select_window_permutation,
)
from repro.hbm import WindowModel, hbm2_config
from repro.mem import Kernel, MappingAwareAllocator
from repro.profiling.bfrv import window_flip_rates


def main() -> None:
    geometry = ChunkGeometry()
    hbm = hbm2_config()
    controller = SDAMController(geometry)
    kernel = Kernel(geometry, sdam=controller)
    space = kernel.spawn()
    malloc = MappingAwareAllocator(kernel, space)

    # The programmer knows this matrix is traversed column-wise with a
    # stride of 16 cache lines, so address bits 10..14 should become
    # the channel selects.  Derive the permutation from the known
    # stride (no profiling needed).
    stride_lines = 16
    sample = np.arange(4096, dtype=np.uint64) * np.uint64(stride_lines * 64)
    rates = window_flip_rates(
        sample % np.uint64(geometry.chunk_bytes), geometry.window_slice()
    )
    perm = select_window_permutation(rates, hbm.layout(), geometry)
    mapping_id = malloc.add_addr_map(perm)
    print(f"registered mapping {mapping_id}: window perm {perm.tolist()}")

    column_matrix = malloc.malloc(8 << 20, mapping_id=mapping_id, tag="matrix")
    row_buffer = malloc.malloc(8 << 20, mapping_id=0, tag="rows")

    model = WindowModel(hbm, max_inflight=256)
    for name, base, mid in (
        ("matrix (custom mapping)", column_matrix, mapping_id),
        ("rows (default mapping)", row_buffer, 0),
    ):
        offsets = (
            np.arange(16384, dtype=np.uint64) * np.uint64(stride_lines * 64)
        ) % np.uint64(8 << 20)
        ha = kernel.translate_to_hardware(space, np.uint64(base) + offsets)
        stats = model.simulate(ha)
        print(f"  stride-16 over {name}: {stats.summary()}")

    # Hardware cost of what we just used (Table 3's models).
    area = amu_area_report()
    cmt = controller.cmt
    print(
        f"\nhardware: AMU {area['switches_per_amu']} switches "
        f"({100 * area['logic_fraction']:.2f}% of a VU37P), "
        f"CMT {cmt.storage_bits_two_level() / 8 / 1024:.1f} KiB SRAM, "
        f"{cmt.driver_writes} driver writes so far"
    )

    # Row-hammer guard rows (Section 4's security discussion): reserve
    # the edge rows of a sensitive chunk.
    guards = geometry.guard_line_offsets(rows_per_guard=2, row_bytes=256)
    print(
        f"guard rows for a sensitive chunk: {guards.size} rows reserved "
        f"at offsets {guards[:2].tolist()} ... {guards[-2:].tolist()}"
    )


if __name__ == "__main__":
    main()
