"""Graph analytics on SDAM: BFS and PageRank over an R-MAT graph.

Demonstrates the full Section 6.2 flow on a data-intensive workload:

1. generate a Graph500-style graph and *actually run* BFS/PageRank;
2. profile the external memory trace per data structure (xadj, adjncy,
   per-vertex records) on the baseline mapping;
3. cluster the structures' bit-flip-rate vectors and install one AMU
   mapping per cluster;
4. re-run on SDAM and compare bandwidth.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.system import Machine, system_by_key
from repro.system.reporting import format_table
from repro.workloads import BFSWorkload, PageRankWorkload


def describe_profile(machine: Machine, workload) -> None:
    profile = machine.profile(workload)
    window = machine.geometry.window_slice()
    rows = []
    for variable in profile.profiles:
        rates = variable.window_flip_rates(window)
        hot = ", ".join(
            str(window[0] + b) for b in np.argsort(rates)[::-1][:3]
        )
        rows.append(
            {
                "structure": variable.name,
                "references": variable.references,
                "footprint_kb": variable.size_bytes // 1024,
                "hottest_bits": hot,
            }
        )
    print(
        format_table(
            rows,
            title=f"{workload.name}: per-structure profile "
            "(hot bits become channel selects)",
            float_format="{:.0f}",
        )
    )


def compare(workload) -> None:
    rows = []
    baseline_time = None
    for key in ("bs_dm", "sdm_bsm_ml4"):
        machine = Machine(system_by_key(key))
        result = machine.run(workload)
        if baseline_time is None:
            baseline_time = result.time_ns
        rows.append(
            {
                "system": result.system,
                "throughput_gbps": result.stats.throughput_gbps,
                "row_hit_rate": result.stats.row_hit_rate,
                "clp": result.stats.clp_utilization,
                "speedup": baseline_time / result.time_ns,
            }
        )
    print(format_table(rows, title=f"{workload.name}: BS+DM vs SDAM"))
    print()


def main() -> None:
    bfs = BFSWorkload(scale=13, edge_factor=8)
    levels = bfs.run_reference()
    print(
        f"BFS on 2^{bfs.scale} vertices: reached "
        f"{int((levels >= 0).sum())} vertices, "
        f"depth {int(levels.max())}\n"
    )
    describe_profile(Machine(system_by_key("bs_dm")), bfs)
    print()
    compare(bfs)

    pagerank = PageRankWorkload(scale=13, edge_factor=8)
    ranks = pagerank.run_reference()
    print(
        f"PageRank: mass {ranks.sum():.3f}, "
        f"top vertex holds {ranks.max() * 100:.2f}% of rank\n"
    )
    compare(pagerank)


if __name__ == "__main__":
    main()
