"""Unit + property tests for the buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.buddy import BuddyAllocator


class TestBasics:
    def test_initial_state(self):
        buddy = BuddyAllocator(max_order=4)
        assert buddy.total_pages == 16
        assert buddy.free_pages == 16
        assert buddy.is_empty

    def test_alloc_whole_region(self):
        buddy = BuddyAllocator(4)
        assert buddy.alloc(4) == 0
        assert buddy.free_pages == 0

    def test_alloc_splits(self):
        buddy = BuddyAllocator(3)
        first = buddy.alloc(0)
        second = buddy.alloc(0)
        assert first != second
        assert buddy.free_pages == 6

    def test_order_for(self):
        assert BuddyAllocator.order_for(1) == 0
        assert BuddyAllocator.order_for(2) == 1
        assert BuddyAllocator.order_for(3) == 2
        assert BuddyAllocator.order_for(512) == 9

    def test_order_for_invalid(self):
        with pytest.raises(AllocationError):
            BuddyAllocator.order_for(0)

    def test_exhaustion(self):
        buddy = BuddyAllocator(2)
        buddy.alloc(2)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(0)

    def test_oversized_request(self):
        with pytest.raises(OutOfMemoryError):
            BuddyAllocator(2).alloc(3)

    def test_free_coalesces_to_full(self):
        buddy = BuddyAllocator(3)
        offsets = [buddy.alloc(0) for _ in range(8)]
        for offset in offsets:
            buddy.free(offset)
        assert buddy.is_empty
        assert buddy.largest_free_order() == 3
        assert buddy.alloc(3) == 0

    def test_double_free(self):
        buddy = BuddyAllocator(2)
        offset = buddy.alloc(0)
        buddy.free(offset)
        with pytest.raises(AllocationError):
            buddy.free(offset)

    def test_free_unallocated(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(2).free(1)

    def test_alloc_pages_rounds_up(self):
        buddy = BuddyAllocator(4)
        buddy.alloc_pages(3)  # rounds to order 2 = 4 pages
        assert buddy.free_pages == 12

    def test_largest_free_order_when_full(self):
        buddy = BuddyAllocator(1)
        buddy.alloc(1)
        assert buddy.largest_free_order() == -1


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 3)),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_invariants_under_random_workload(operations):
    """Free-page accounting and disjointness hold for any op sequence."""
    buddy = BuddyAllocator(max_order=6)
    live: list[tuple[int, int]] = []  # (offset, order)
    for action, order in operations:
        if action == "alloc":
            try:
                offset = buddy.alloc(order)
            except OutOfMemoryError:
                continue
            live.append((offset, order))
        elif live:
            offset, order = live.pop()
            buddy.free(offset)
    used = sum(1 << order for _offset, order in live)
    assert buddy.free_pages == buddy.total_pages - used
    # No two live blocks overlap.
    spans = sorted(
        (offset, offset + (1 << order)) for offset, order in live
    )
    for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
        assert end_a <= start_b
    # Blocks are naturally aligned.
    for offset, order in live:
        assert offset % (1 << order) == 0
