"""Tests for chunk remapping and live migration."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.sdam import SDAMController
from repro.errors import AllocationError, CMTError, DeviceFaultError
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.mem.migration import ChunkMigrator

SMALL = ChunkGeometry(total_bytes=32 * MiB)


def setup_machine():
    kernel = Kernel(SMALL, sdam=SDAMController(SMALL))
    space = kernel.spawn()
    malloc = MappingAwareAllocator(kernel, space)
    migrator = ChunkMigrator(kernel)
    return kernel, space, malloc, migrator


def rolled(shift: int) -> np.ndarray:
    return np.roll(np.arange(SMALL.window_bits), shift)


class TestFreeCapacity:
    def test_remap_free_chunks_is_cheap(self):
        kernel, _space, malloc, migrator = setup_machine()
        mapping_id = malloc.add_addr_map(rolled(1))
        acquired = migrator.remap_free_capacity(mapping_id, chunks=3)
        assert acquired == 3
        assert kernel.physical.live_groups()[mapping_id] == 3

    def test_stops_at_exhaustion(self):
        kernel, _space, malloc, migrator = setup_machine()
        mapping_id = malloc.add_addr_map(rolled(1))
        acquired = migrator.remap_free_capacity(mapping_id, chunks=1000)
        assert acquired == SMALL.num_chunks
        assert kernel.physical.free_chunk_count == 0


class TestLiveMigration:
    def populate(self, kernel, space, malloc, mapping_id=0):
        va = malloc.malloc(1 * MiB, mapping_id=mapping_id, tag="data")
        # Touch every page so frames exist.
        step = SMALL.page_bytes
        addresses = np.arange(va, va + 1 * MiB, step, dtype=np.uint64)
        space.translate_trace(addresses)
        pa = space.translate(va)
        return SMALL.chunk_number(pa)

    def test_migration_moves_mapping(self):
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(2))
        chunk_no = self.populate(kernel, space, malloc)
        report = migrator.migrate_chunk(chunk_no, new_mapping)
        assert report.old_mapping == 0
        assert report.new_mapping == new_mapping
        assert kernel.sdam.cmt.mapping_index_of(chunk_no) == new_mapping

    def test_copy_cost_scales_with_resident_data(self):
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(3))
        chunk_no = self.populate(kernel, space, malloc)
        report = migrator.migrate_chunk(chunk_no, new_mapping)
        assert report.lines_copied > 0
        assert report.cost_ns > 0
        # Each line is read once and written once.
        pages = 1 * MiB // SMALL.page_bytes
        assert report.lines_copied == pages * (SMALL.page_bytes // 64)

    def test_noop_migration_free(self):
        kernel, space, malloc, migrator = setup_machine()
        chunk_no = self.populate(kernel, space, malloc)
        report = migrator.migrate_chunk(chunk_no, 0)
        assert report.cost_ns == 0.0
        assert report.lines_copied == 0

    def test_unknown_chunk_rejected(self):
        _kernel, _space, malloc, migrator = setup_machine()
        malloc.add_addr_map(rolled(1))
        with pytest.raises(AllocationError):
            migrator.migrate_chunk(5, 1)

    def test_group_bookkeeping_follows(self):
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(4))
        chunk_no = self.populate(kernel, space, malloc)
        migrator.migrate_chunk(chunk_no, new_mapping)
        assert kernel.physical.mapping_of_chunk(chunk_no) == new_mapping

    def test_migrate_group(self):
        kernel, space, malloc, migrator = setup_machine()
        source = malloc.add_addr_map(rolled(1))
        target = malloc.add_addr_map(rolled(5))
        self.populate(kernel, space, malloc, mapping_id=source)
        reports = migrator.migrate_group(source, target)
        assert reports
        assert all(r.new_mapping == target for r in reports)
        assert kernel.physical.live_groups().get(source) is None

    def test_translation_consistent_after_migration(self):
        """Data addressed through the new mapping is still one-to-one."""
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(6))
        chunk_no = self.populate(kernel, space, malloc)
        migrator.migrate_chunk(chunk_no, new_mapping)
        base = SMALL.chunk_base(chunk_no)
        pa = np.uint64(base) + np.arange(0, SMALL.chunk_bytes, 64, dtype=np.uint64)
        ha = kernel.sdam.translate(pa)
        assert np.unique(ha).size == pa.size


class TestErrorPaths:
    def populate(self, kernel, space, malloc, mapping_id=0):
        va = malloc.malloc(1 * MiB, mapping_id=mapping_id, tag="data")
        step = SMALL.page_bytes
        addresses = np.arange(va, va + 1 * MiB, step, dtype=np.uint64)
        space.translate_trace(addresses)
        return SMALL.chunk_number(space.translate(va))

    def test_mid_copy_failure_rolls_back_cmt(self):
        """A failed copy must never leave the chunk half-switched."""
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(2))
        chunk_no = self.populate(kernel, space, malloc)
        calls = {"n": 0}

        def exploding_copy(_pa, _reads, _writes):
            calls["n"] += 1
            raise OSError("device wedged mid-copy")

        with pytest.raises(OSError):
            migrator.migrate_chunk(chunk_no, new_mapping, on_copy=exploding_copy)
        assert calls["n"] == 1
        assert kernel.sdam.cmt.mapping_index_of(chunk_no) == 0
        assert kernel.physical.mapping_of_chunk(chunk_no) == 0
        # The chunk still translates one-to-one under the old mapping.
        base = SMALL.chunk_base(chunk_no)
        pa = np.uint64(base) + np.arange(
            0, SMALL.chunk_bytes, 64, dtype=np.uint64
        )
        assert np.unique(kernel.sdam.translate(pa)).size == pa.size

    def test_library_error_rolls_back_cmt(self):
        """Structured library faults get the same rollback as OSError."""
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(3))
        chunk_no = self.populate(kernel, space, malloc)

        def device_fault(_pa, _reads, _writes):
            raise DeviceFaultError("modeled bank offline mid-copy")

        with pytest.raises(DeviceFaultError):
            migrator.migrate_chunk(chunk_no, new_mapping, on_copy=device_fault)
        assert kernel.sdam.cmt.mapping_index_of(chunk_no) == 0
        assert kernel.physical.mapping_of_chunk(chunk_no) == 0

    def test_programming_error_propagates_unmasked(self):
        """A bug in the copy callback is not a copy fault: TypeError
        escapes the narrowed handler instead of being dressed up as a
        tidy rolled-back migration."""
        kernel, space, malloc, migrator = setup_machine()
        new_mapping = malloc.add_addr_map(rolled(4))
        chunk_no = self.populate(kernel, space, malloc)

        def buggy_copy(_pa, _reads, _writes):
            return None + 1  # deliberate TypeError

        with pytest.raises(TypeError):
            migrator.migrate_chunk(chunk_no, new_mapping, on_copy=buggy_copy)
        # No rollback happened — the honest (half-switched) state is
        # left for the crash dump rather than silently papered over.
        assert kernel.sdam.cmt.mapping_index_of(chunk_no) == new_mapping

    def test_zero_live_lines_is_a_pure_table_write(self):
        kernel, _space, malloc, migrator = setup_machine()
        source = malloc.add_addr_map(rolled(1))
        target = malloc.add_addr_map(rolled(2))
        migrator.remap_free_capacity(source, chunks=1)
        chunk = next(iter(kernel.physical.group(source).chunks))
        copies = []
        report = migrator.migrate_chunk(
            chunk.number, target, on_copy=lambda *a: copies.append(a)
        )
        assert report.lines_copied == 0
        assert report.cost_ns == 0.0
        assert copies == []  # no data, no copy callback
        assert kernel.sdam.cmt.mapping_index_of(chunk.number) == target

    def test_copy_cost_is_deterministic(self):
        costs = []
        for _ in range(2):
            kernel, space, malloc, migrator = setup_machine()
            new_mapping = malloc.add_addr_map(rolled(3))
            chunk_no = self.populate(kernel, space, malloc)
            report = migrator.migrate_chunk(chunk_no, new_mapping)
            costs.append((report.lines_copied, report.cost_ns))
        assert costs[0] == costs[1]


class TestPolicy:
    def test_amortisation(self):
        _kernel, _space, malloc, migrator = setup_machine()
        from repro.mem.migration import MigrationReport

        report = MigrationReport(0, 0, 1, 1000, cost_ns=10_000.0)
        assert migrator.amortises_over(
            report, expected_accesses=10_000,
            old_ns_per_access=45, new_ns_per_access=15,
        )
        assert not migrator.amortises_over(
            report, expected_accesses=100,
            old_ns_per_access=45, new_ns_per_access=44,
        )

    def test_requires_sdam(self):
        kernel = Kernel(SMALL, sdam=None)
        with pytest.raises(CMTError):
            ChunkMigrator(kernel)
