"""Tests for the mapping-aware malloc (Section 6.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.sdam import SDAMController
from repro.errors import AllocationError
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator

SMALL = ChunkGeometry(total_bytes=64 * MiB)


def make_allocator():
    kernel = Kernel(SMALL, sdam=SDAMController(SMALL))
    space = kernel.spawn()
    return MappingAwareAllocator(kernel, space), kernel, space


def rolled(shift: int) -> np.ndarray:
    return np.roll(np.arange(SMALL.window_bits), shift)


class TestMallocFree:
    def test_basic_roundtrip(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(1000, tag="x")
        assert allocator.allocation_of(va).size == 1000
        allocator.free(va)
        assert allocator.live_allocations() == []

    def test_zero_size_rejected(self):
        allocator, _kernel, _space = make_allocator()
        with pytest.raises(AllocationError):
            allocator.malloc(0)

    def test_allocations_disjoint(self):
        allocator, _kernel, _space = make_allocator()
        blocks = [(allocator.malloc(100), 100) for _ in range(50)]
        spans = sorted((va, va + size) for va, size in blocks)
        for (_s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            assert e0 <= s1

    def test_double_free(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(64)
        allocator.free(va)
        with pytest.raises(AllocationError):
            allocator.free(va)

    def test_free_unknown_pointer(self):
        allocator, _kernel, _space = make_allocator()
        with pytest.raises(AllocationError):
            allocator.free(0xDEAD)

    def test_reuse_after_free(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(4096)
        allocator.free(va)
        again = allocator.malloc(4096)
        assert again == va  # first-fit reuses the hole

    def test_large_allocation_gets_own_heap(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(8 * MiB)
        assert allocator.allocation_of(va).size == 8 * MiB

    def test_bytes_live_accounting(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(500)
        assert allocator.bytes_live == 500
        allocator.free(va)
        assert allocator.bytes_live == 0


class TestPerMappingHeaps:
    def test_heaps_segregated_by_mapping(self):
        allocator, _kernel, _space = make_allocator()
        id_a = allocator.add_addr_map(rolled(1))
        va_a = allocator.malloc(128, mapping_id=id_a, tag="a")
        va_b = allocator.malloc(128, mapping_id=0, tag="b")
        heap_a = allocator._find_heap(va_a, id_a)
        heap_b = allocator._find_heap(va_b, 0)
        assert heap_a is not heap_b
        assert heap_a.mapping_id == id_a

    def test_same_mapping_shares_heap(self):
        allocator, _kernel, _space = make_allocator()
        mapping_id = allocator.add_addr_map(rolled(2))
        va1 = allocator.malloc(64, mapping_id=mapping_id)
        va2 = allocator.malloc(64, mapping_id=mapping_id)
        heap = allocator._find_heap(va1, mapping_id)
        assert va2 in heap

    def test_heap_pages_back_matching_chunks(self):
        allocator, kernel, space = make_allocator()
        mapping_id = allocator.add_addr_map(rolled(3))
        va = allocator.malloc(64, mapping_id=mapping_id)
        pa = space.translate(va)
        assert (
            kernel.physical.mapping_of_chunk(SMALL.chunk_number(pa))
            == mapping_id
        )

    def test_full_heap_grows_new_heap(self):
        allocator, _kernel, _space = make_allocator()
        first = allocator.malloc(3 * MiB)
        second = allocator.malloc(3 * MiB)
        heap_count = len(allocator.heaps())
        assert heap_count >= 2
        assert first != second

    def test_trim_releases_empty_heaps(self):
        allocator, kernel, _space = make_allocator()
        va = allocator.malloc(1 * MiB)
        pa_before = kernel.physical.frames_in_use()
        allocator.free(va)
        released = allocator.trim()
        assert released >= 1
        assert kernel.physical.frames_in_use() <= pa_before


class TestProfilingHooks:
    def test_allocation_tags(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(256, tag="adjacency")
        assert allocator.allocation_of(va).tag == "adjacency"

    def test_interior_pointer_lookup(self):
        allocator, _kernel, _space = make_allocator()
        va = allocator.malloc(1024, tag="buf")
        assert allocator.allocation_of(va + 512).tag == "buf"

    def test_interior_lookup_miss(self):
        allocator, _kernel, _space = make_allocator()
        with pytest.raises(AllocationError):
            allocator.allocation_of(123)


@given(
    sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=40),
    free_order_seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_malloc_free_any_order(sizes, free_order_seed):
    """All allocations are disjoint and freeing in any order restores
    the heap to empty."""
    allocator, _kernel, _space = make_allocator()
    vas = [allocator.malloc(size) for size in sizes]
    rng = np.random.default_rng(free_order_seed)
    for index in rng.permutation(len(vas)):
        allocator.free(vas[index])
    assert allocator.bytes_live == 0
    for heap in allocator.heaps():
        assert heap.is_empty
        assert heap.free_bytes == heap.size
