"""Tests for chunk groups and the physical memory manager (Section 6.1)."""

import pytest

from repro.core.chunks import ChunkGeometry, MiB
from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.physical import Chunk, PhysicalMemory

SMALL = ChunkGeometry(total_bytes=16 * MiB)  # 8 chunks


class TestChunk:
    def test_frame_allocation_within_chunk(self):
        chunk = Chunk(number=2, geometry=SMALL)
        pa = chunk.alloc_frame()
        assert SMALL.chunk_number(pa) == 2
        assert pa % SMALL.page_bytes == 0

    def test_frames_distinct(self):
        chunk = Chunk(number=0, geometry=SMALL)
        frames = chunk.alloc_frames(10)
        assert len(set(frames)) == 10

    def test_free_and_empty(self):
        chunk = Chunk(number=0, geometry=SMALL)
        pa = chunk.alloc_frame()
        assert not chunk.is_empty
        chunk.free_frame(pa)
        assert chunk.is_empty

    def test_free_foreign_frame_rejected(self):
        chunk = Chunk(number=0, geometry=SMALL)
        with pytest.raises(AllocationError):
            chunk.free_frame(4 * MiB)

    def test_capacity(self):
        chunk = Chunk(number=0, geometry=SMALL)
        assert chunk.free_pages == SMALL.pages_per_chunk


class TestPhysicalMemory:
    def test_acquire_assigns_to_group(self):
        memory = PhysicalMemory(SMALL)
        chunk = memory.acquire_chunk(mapping_id=3)
        assert chunk.mapping_id == 3
        assert memory.live_groups() == {3: 1}
        assert memory.free_chunk_count == 7

    def test_assignment_callback_fires(self):
        events = []
        memory = PhysicalMemory(
            SMALL, on_chunk_assigned=lambda c, m: events.append((c, m))
        )
        memory.acquire_chunk(mapping_id=2)
        assert events == [(0, 2)]

    def test_frames_come_from_matching_group(self):
        memory = PhysicalMemory(SMALL)
        pa_a = memory.alloc_frame(mapping_id=1)
        pa_b = memory.alloc_frame(mapping_id=2)
        assert memory.mapping_of_chunk(SMALL.chunk_number(pa_a)) == 1
        assert memory.mapping_of_chunk(SMALL.chunk_number(pa_b)) == 2

    def test_group_grows_when_chunk_fills(self):
        memory = PhysicalMemory(SMALL)
        frames = memory.alloc_frames(SMALL.pages_per_chunk + 1, mapping_id=0)
        chunks_used = {SMALL.chunk_number(pa) for pa in frames}
        assert len(chunks_used) == 2

    def test_empty_chunk_returns_to_free_list(self):
        events = []
        memory = PhysicalMemory(
            SMALL, on_chunk_released=lambda c: events.append(c)
        )
        pa = memory.alloc_frame(mapping_id=1)
        memory.free_frame(pa)
        assert memory.free_chunk_count == 8
        assert events == [SMALL.chunk_number(pa)]
        assert memory.live_groups() == {}

    def test_free_unallocated_frame(self):
        with pytest.raises(AllocationError):
            PhysicalMemory(SMALL).free_frame(0)

    def test_release_nonempty_chunk_rejected(self):
        memory = PhysicalMemory(SMALL)
        chunk = memory.acquire_chunk(mapping_id=0)
        chunk.alloc_frame()
        with pytest.raises(AllocationError):
            memory.release_chunk(chunk)

    def test_out_of_chunks(self):
        memory = PhysicalMemory(SMALL)
        for _ in range(8):
            memory.acquire_chunk(mapping_id=0)
        with pytest.raises(OutOfMemoryError):
            memory.acquire_chunk(mapping_id=1)

    def test_fragmentation_bounded_by_pattern_count(self):
        """Section 4: waste is bounded by #patterns, not #chunks."""
        memory = PhysicalMemory(SMALL)
        for mapping_id in range(4):
            memory.alloc_frame(mapping_id)  # one page per pattern
        stranded = memory.internal_fragmentation_pages()
        assert stranded == 4 * (SMALL.pages_per_chunk - 1)
        # 4 patterns -> at most 4 partially-filled chunks.
        assert len(memory.live_groups()) == 4

    def test_frames_in_use(self):
        memory = PhysicalMemory(SMALL)
        pa = memory.alloc_frame(mapping_id=0)
        assert memory.frames_in_use() == 1
        memory.free_frame(pa)
        assert memory.frames_in_use() == 0
