"""Tests for virtual memory: VMAs, page table, demand paging."""

import numpy as np
import pytest

from repro.errors import AddressError, AllocationError
from repro.mem.virtual import AddressSpace

PAGE = 4096


class FrameSource:
    """Deterministic fake fault handler recording mapping ids."""

    def __init__(self):
        self.next_frame = 0
        self.faults: list[int] = []

    def __call__(self, mapping_id: int) -> int:
        self.faults.append(mapping_id)
        frame = self.next_frame
        self.next_frame += PAGE
        return frame


def make_space():
    source = FrameSource()
    return AddressSpace(page_bytes=PAGE, fault_handler=source), source


class TestMmap:
    def test_mmap_page_aligned(self):
        space, _src = make_space()
        vma = space.mmap(100)
        assert vma.start % PAGE == 0
        assert vma.length == PAGE

    def test_mmap_rounds_up(self):
        space, _src = make_space()
        vma = space.mmap(PAGE + 1)
        assert vma.length == 2 * PAGE

    def test_mmap_zero_rejected(self):
        space, _src = make_space()
        with pytest.raises(AllocationError):
            space.mmap(0)

    def test_vmas_disjoint(self):
        space, _src = make_space()
        a = space.mmap(3 * PAGE)
        b = space.mmap(PAGE)
        assert a.end <= b.start

    def test_mapping_id_stored(self):
        space, _src = make_space()
        vma = space.mmap(PAGE, mapping_id=7, name="heap")
        assert vma.mapping_id == 7
        assert vma.name == "heap"


class TestDemandPaging:
    def test_no_frames_until_touched(self):
        space, source = make_space()
        space.mmap(8 * PAGE)
        assert space.resident_pages() == 0
        assert source.faults == []

    def test_fault_allocates_with_vma_mapping_id(self):
        space, source = make_space()
        vma = space.mmap(PAGE, mapping_id=5)
        space.translate(vma.start)
        assert source.faults == [5]
        assert vma.faults == 1

    def test_second_touch_no_fault(self):
        space, source = make_space()
        vma = space.mmap(PAGE)
        space.translate(vma.start)
        space.translate(vma.start + 8)
        assert len(source.faults) == 1

    def test_unmapped_access_faults_hard(self):
        space, _src = make_space()
        with pytest.raises(AddressError):
            space.translate(0x10)

    def test_offset_preserved(self):
        space, _src = make_space()
        vma = space.mmap(PAGE)
        pa = space.translate(vma.start + 123)
        assert pa % PAGE == 123


class TestTraceTranslation:
    def test_matches_scalar_translation(self):
        space, _src = make_space()
        vma = space.mmap(16 * PAGE)
        va = vma.start + np.arange(0, 16 * PAGE, 64, dtype=np.uint64)
        trace_pa = space.translate_trace(va)
        scalar_pa = np.array([space.translate(int(v)) for v in va])
        np.testing.assert_array_equal(trace_pa, scalar_pa)

    def test_empty_trace(self):
        space, _src = make_space()
        out = space.translate_trace(np.zeros(0, dtype=np.uint64))
        assert out.size == 0

    def test_each_page_faults_once(self):
        space, source = make_space()
        vma = space.mmap(4 * PAGE)
        va = vma.start + np.arange(0, 4 * PAGE, 16, dtype=np.uint64)
        space.translate_trace(va)
        assert len(source.faults) == 4
        assert space.total_faults == 4


class TestMunmap:
    def test_frames_freed(self):
        space, _src = make_space()
        vma = space.mmap(2 * PAGE)
        space.translate(vma.start)
        space.translate(vma.start + PAGE)
        freed: list[int] = []
        space.munmap(vma, free_frame=freed.append)
        assert len(freed) == 2
        assert space.resident_pages() == 0

    def test_access_after_munmap_faults(self):
        space, _src = make_space()
        vma = space.mmap(PAGE)
        space.munmap(vma, free_frame=lambda pa: None)
        with pytest.raises(AddressError):
            space.translate(vma.start)

    def test_foreign_vma_rejected(self):
        space_a, _ = make_space()
        space_b, _ = make_space()
        vma = space_a.mmap(PAGE)
        with pytest.raises(AddressError):
            space_b.munmap(vma, free_frame=lambda pa: None)

    def test_untouched_pages_free_nothing(self):
        space, _src = make_space()
        vma = space.mmap(4 * PAGE)
        freed: list[int] = []
        space.munmap(vma, free_frame=freed.append)
        assert freed == []

    def test_frame_of(self):
        space, _src = make_space()
        vma = space.mmap(PAGE)
        assert space.frame_of(vma.start) is None
        space.translate(vma.start)
        assert space.frame_of(vma.start) is not None
