"""Tests for the kernel: syscalls, CMT driver, fault path."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.sdam import SDAMController
from repro.errors import ProfilingError
from repro.mem.kernel import Kernel

SMALL = ChunkGeometry(total_bytes=32 * MiB)


def sdam_kernel() -> Kernel:
    return Kernel(SMALL, sdam=SDAMController(SMALL))


def rolled(shift: int) -> np.ndarray:
    return np.roll(np.arange(SMALL.window_bits), shift)


class TestMappingRegistration:
    def test_add_addr_map_returns_fresh_id(self):
        kernel = sdam_kernel()
        assert kernel.add_addr_map(rolled(1)) == 1
        assert kernel.add_addr_map(rolled(2)) == 2

    def test_duplicate_mapping_shares_id(self):
        kernel = sdam_kernel()
        assert kernel.add_addr_map(rolled(1)) == kernel.add_addr_map(rolled(1))

    def test_baseline_kernel_aliases_default(self):
        kernel = Kernel(SMALL, sdam=None)
        assert kernel.add_addr_map(rolled(1)) == 0
        assert not kernel.sdam_enabled

    def test_registered_ids(self):
        kernel = sdam_kernel()
        kernel.add_addr_map(rolled(1))
        assert kernel.registered_mapping_ids() == [0, 1]


class TestFaultPath:
    def test_fault_allocates_from_mapping_group(self):
        kernel = sdam_kernel()
        mapping_id = kernel.add_addr_map(rolled(1))
        space = kernel.spawn()
        vma = kernel.sys_mmap(space, 4 * MiB, mapping_id=mapping_id)
        pa = space.translate(vma.start)
        chunk = SMALL.chunk_number(pa)
        assert kernel.physical.mapping_of_chunk(chunk) == mapping_id

    def test_cmt_programmed_on_chunk_acquire(self):
        kernel = sdam_kernel()
        mapping_id = kernel.add_addr_map(rolled(3))
        space = kernel.spawn()
        vma = kernel.sys_mmap(space, MiB, mapping_id=mapping_id)
        pa = space.translate(vma.start)
        chunk = SMALL.chunk_number(pa)
        assert kernel.sdam.cmt.mapping_index_of(chunk) == mapping_id

    def test_unregistered_mapping_rejected(self):
        kernel = sdam_kernel()
        space = kernel.spawn()
        with pytest.raises(ProfilingError):
            kernel.sys_mmap(space, MiB, mapping_id=42)

    def test_munmap_releases_chunk_and_cmt(self):
        kernel = sdam_kernel()
        mapping_id = kernel.add_addr_map(rolled(2))
        space = kernel.spawn()
        vma = kernel.sys_mmap(space, MiB, mapping_id=mapping_id)
        pa = space.translate(vma.start)
        chunk = SMALL.chunk_number(pa)
        kernel.sys_munmap(space, vma)
        assert kernel.sdam.cmt.mapping_index_of(chunk) == 0
        assert kernel.physical.free_chunk_count == SMALL.num_chunks


class TestTranslationPipeline:
    def test_identity_for_baseline(self):
        kernel = Kernel(SMALL, sdam=None)
        space = kernel.spawn()
        vma = kernel.sys_mmap(space, MiB)
        va = vma.start + np.arange(0, MiB, 4096, dtype=np.uint64)
        ha = kernel.translate_to_hardware(space, va)
        pa = space.translate_trace(va)
        np.testing.assert_array_equal(ha, pa)

    def test_sdam_applies_chunk_mapping(self):
        kernel = sdam_kernel()
        mapping_id = kernel.add_addr_map(rolled(4))
        space = kernel.spawn()
        vma = kernel.sys_mmap(space, 2 * MiB, mapping_id=mapping_id)
        va = vma.start + np.arange(0, 2 * MiB, 64, dtype=np.uint64)
        pa = space.translate_trace(va)
        ha = kernel.translate_to_hardware(space, va)
        assert not np.array_equal(ha, pa)
        # Chunk numbers never change (Section 4).
        np.testing.assert_array_equal(
            SMALL.chunk_number(ha), SMALL.chunk_number(pa)
        )

    def test_distinct_mappings_in_one_process(self):
        kernel = sdam_kernel()
        id_a = kernel.add_addr_map(rolled(1))
        id_b = kernel.add_addr_map(rolled(7))
        space = kernel.spawn()
        vma_a = kernel.sys_mmap(space, MiB, mapping_id=id_a)
        vma_b = kernel.sys_mmap(space, MiB, mapping_id=id_b)
        pa_a = space.translate(vma_a.start)
        pa_b = space.translate(vma_b.start)
        assert SMALL.chunk_number(pa_a) != SMALL.chunk_number(pa_b)


class TestSpawn:
    def test_pids_unique(self):
        kernel = sdam_kernel()
        assert kernel.spawn().pid != kernel.spawn().pid
