"""Tests for the convenience API surface."""

import pytest

from repro import api
from repro.errors import ConfigError


class TestBuilders:
    def test_build_machine_default(self):
        machine = api.build_machine()
        assert machine.system.key == "sdm_bsm"

    def test_build_machine_unknown(self):
        with pytest.raises(ConfigError):
            api.build_machine("warp_drive")

    def test_strided_workload(self):
        workload = api.strided_workload(stride_lines=8)
        assert workload.stride_lines == 8

    def test_mixed_workload(self):
        workload = api.mixed_stride_workload(strides=(1, 2))
        assert workload.threads == 2


class TestCompareSystems:
    def test_quick_comparison(self):
        workload = api.mixed_stride_workload(
            strides=(1, 16), accesses_per_stride=1500
        )
        results = api.compare_systems(
            workload, system_keys=("bs_dm", "sdm_bsm_ml4")
        )
        assert set(results) == {"BS+DM", "SDM+BSM+ML(4)"}
        assert results["SDM+BSM+ML(4)"].time_ns < results["BS+DM"].time_ns


class TestFullEvaluation:
    def test_quick_sweep_produces_table(self):
        table = api.full_evaluation(quick=True)
        assert len(table.workloads()) == 4
        assert "BS+DM" in table.systems()
        for system in table.systems():
            assert table.geomean(system) > 0
