"""Tests for the convenience API surface (Session + deprecated shims)."""

import pytest

import repro
from repro import api
from repro.errors import ConfigError
from repro.system import MachineResult, SuiteResult, system_by_key


def tiny_workload():
    return api.mixed_stride_workload(strides=(1, 16), accesses_per_stride=1500)


class TestSession:
    def test_exported_from_top_level(self):
        assert repro.Session is api.Session
        assert "Session" in repro.__all__

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "stages"))
        session = api.Session()
        assert session.cache_dir == str(tmp_path / "stages")

    def test_none_disables_the_disk_cache(self):
        session = api.Session(cache_dir=None, workers=0)
        assert session.cache_dir is None
        assert session.runner.store is None

    def test_run_persists_stages(self, tmp_path):
        session = api.Session(cache_dir=tmp_path, workers=0)
        result = session.run(tiny_workload(), "sdm_bsm")
        assert isinstance(result, MachineResult)
        assert result.system == "SDM+BSM"
        assert list((tmp_path / "result").iterdir())
        assert list((tmp_path / "profile").iterdir())

    def test_compare_keys_by_callers_key(self):
        session = api.Session(cache_dir=None, workers=0)
        config = system_by_key("sdm_bsm_ml4")
        results = session.compare(tiny_workload(), systems=("bs_dm", config))
        assert set(results) == {"bs_dm", "sdm_bsm_ml4"}
        assert results["sdm_bsm_ml4"].time_ns < results["bs_dm"].time_ns

    def test_sweep_returns_suite_result(self):
        session = api.Session(cache_dir=None, workers=0)
        suite = session.sweep(
            [tiny_workload()], systems=["bs_dm", "sdm_bsm"]
        )
        assert isinstance(suite, SuiteResult)
        assert not suite.errors
        assert suite.table.systems() == ["BS+DM", "SDM+BSM"]
        assert suite.table.geomean("SDM+BSM") > 0


class TestOnlineExports:
    def test_adaptive_surface_exported_coherently(self):
        from repro.online import AdaptiveController, run_adaptive_campaign

        for name in (
            "AdaptiveController",
            "AdaptiveCampaignResult",
            "run_adaptive_campaign",
            "MappingSelection",
            "select_application_mapping",
        ):
            assert name in repro.__all__
            assert name in api.__all__
            assert getattr(repro, name) is getattr(api, name)
        assert repro.AdaptiveController is AdaptiveController
        assert repro.run_adaptive_campaign is run_adaptive_campaign

    def test_core_reexports_selection(self):
        from repro import core
        from repro.core.selection import select_application_mapping

        assert core.select_application_mapping is select_application_mapping
        assert "MappingSelection" in core.__all__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_session_adaptive_campaign(self):
        session = api.Session(cache_dir=None, workers=0)
        result = session.adaptive_campaign(seed=0, quick=True)
        assert result.stationary_remaps == 0
        assert result.speedup > 1.0


class TestBuilders:
    def test_build_machine_default_warns(self):
        with pytest.warns(DeprecationWarning):
            machine = api.build_machine()
        assert machine.system.key == "sdm_bsm"

    def test_build_machine_unknown(self):
        with pytest.warns(DeprecationWarning), pytest.raises(ConfigError):
            api.build_machine("warp_drive")

    def test_strided_workload(self):
        workload = api.strided_workload(stride_lines=8)
        assert workload.stride_lines == 8

    def test_mixed_workload(self):
        workload = api.mixed_stride_workload(strides=(1, 2))
        assert workload.threads == 2


class TestCompareSystems:
    def test_quick_comparison_keyed_by_requested_key(self):
        with pytest.warns(DeprecationWarning):
            results = api.compare_systems(
                tiny_workload(), system_keys=("bs_dm", "sdm_bsm_ml4")
            )
        assert set(results) == {"bs_dm", "sdm_bsm_ml4"}
        assert results["sdm_bsm_ml4"].time_ns < results["bs_dm"].time_ns


class TestFullEvaluation:
    def test_quick_sweep_produces_table(self):
        with pytest.warns(DeprecationWarning):
            table = api.full_evaluation(quick=True)
        assert len(table.workloads()) == 4
        assert "BS+DM" in table.systems()
        for system in table.systems():
            assert table.geomean(system) > 0
