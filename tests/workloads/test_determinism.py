"""Determinism guards for every workload family.

The evaluation methodology depends on reproducible traces: profiling
and evaluation runs must see exactly the same program for a given
input seed, and different seeds must actually change the input.  A
workload that silently consumed global RNG state would break both.
"""

import numpy as np
import pytest

from repro.workloads import (
    BFSWorkload,
    HNSWWorkload,
    HashJoinWorkload,
    IVFPQWorkload,
    KMeansWorkload,
    MergeJoinWorkload,
    MixedStrideWorkload,
    PageRankWorkload,
    SSSPWorkload,
    spec2006_workload,
)


def bases(workload) -> dict[str, int]:
    base = {}
    cursor = 0x10000000
    for spec in workload.variables():
        base[spec.name] = cursor
        cursor += spec.size_bytes + 4096
    return base


def small_instances():
    return [
        BFSWorkload(scale=9, edge_factor=4, max_accesses=3000),
        PageRankWorkload(scale=9, edge_factor=4, max_accesses=3000),
        SSSPWorkload(scale=9, edge_factor=4, max_accesses=3000),
        HashJoinWorkload(build_tuples=1024, probe_tuples=2048, max_accesses=3000),
        MergeJoinWorkload(tuples=2048, max_accesses=3000),
        KMeansWorkload(points=512, dims=8, max_accesses=3000),
        HNSWWorkload(nodes=512, dims=16, queries=16, max_accesses=3000),
        IVFPQWorkload(lists=32, vectors_per_list=64, queries=8, max_accesses=3000),
        MixedStrideWorkload(strides=(1, 8), accesses_per_stride=500),
        spec2006_workload("hmmer", total_accesses=3000),
    ]


@pytest.mark.parametrize(
    "workload", small_instances(), ids=lambda w: w.name
)
def test_same_seed_reproduces_trace(workload):
    base = bases(workload)
    first = workload.trace(base, input_seed=0)
    second = workload.trace(base, input_seed=0)
    assert len(first) == len(second)
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.va, b.va)
        np.testing.assert_array_equal(a.variable, b.variable)
        np.testing.assert_array_equal(a.is_write, b.is_write)


@pytest.mark.parametrize(
    "workload", small_instances(), ids=lambda w: w.name
)
def test_different_seed_changes_trace(workload):
    base = bases(workload)
    first = np.concatenate([t.va for t in workload.trace(base, input_seed=0)])
    second = np.concatenate([t.va for t in workload.trace(base, input_seed=5)])
    assert first.size and second.size
    if first.size == second.size:
        assert not np.array_equal(first, second)


@pytest.mark.parametrize(
    "workload", small_instances(), ids=lambda w: w.name
)
def test_traces_are_tagged_and_in_bounds(workload):
    base = bases(workload)
    specs = workload.variables()
    limit = max(base[s.name] + s.size_bytes for s in specs)
    for trace in workload.trace(base, input_seed=1):
        if len(trace) == 0:
            continue
        assert (trace.variable >= 0).all()
        assert (trace.variable < len(specs)).all()
        assert int(trace.va.max()) < limit
