"""Tests for the analytics and IR workloads."""

import numpy as np

from repro.workloads.analytics import HashJoinWorkload, MergeJoinWorkload
from repro.workloads.ir import HNSWWorkload, IVFPQWorkload, KMeansWorkload


def bases(workload) -> dict[str, int]:
    base = {}
    cursor = 0x10000000
    for spec in workload.variables():
        base[spec.name] = cursor
        cursor += spec.size_bytes + 4096
    return base


class TestHashJoin:
    def test_reference_matches(self):
        w = HashJoinWorkload(build_tuples=1024, probe_tuples=2048)
        matches = w.run_reference()
        assert 0 < matches <= 2048

    def test_reference_varies_with_input(self):
        w = HashJoinWorkload(build_tuples=1024, probe_tuples=2048)
        assert w.run_reference(0) != w.run_reference(7)

    def test_trace_phases(self):
        w = HashJoinWorkload(max_accesses=4000, threads=2)
        traces = w.trace(bases(w))
        merged = np.concatenate([t.variable for t in traces])
        # Build scan (0), probe scan (1), hash table (2), output (3).
        assert {0, 1, 2, 3} <= set(merged.tolist())

    def test_hash_table_touched_randomly(self):
        w = HashJoinWorkload(max_accesses=6000, threads=1)
        trace = w.trace(bases(w))[0]
        table = trace.va[trace.variable == 2]
        assert np.unique(table).size > 100


class TestMergeJoin:
    def test_reference(self):
        w = MergeJoinWorkload(tuples=2048)
        assert 0 < w.run_reference() <= 2048

    def test_key_column_scan_is_strided(self):
        w = MergeJoinWorkload(tuples=4096, max_accesses=8000, threads=1)
        trace = w.trace(bases(w))[0]
        keys = trace.va[(trace.variable == 1) & ~trace.is_write]
        deltas = np.diff(keys)
        forward = deltas[deltas > 0]
        # Key extraction skips the 256 B tuple body: stride 4 lines.
        assert (forward == 256).mean() > 0.8

    def test_output_written(self):
        w = MergeJoinWorkload(tuples=2048, max_accesses=4000, threads=1)
        trace = w.trace(bases(w))[0]
        out = trace.variable == 3
        assert out.any()
        assert trace.is_write[out].all()


class TestKMeansWorkload:
    def test_reference_labels(self):
        w = KMeansWorkload(points=512, dims=8, k=4, iterations=2)
        labels = w.run_reference()
        assert labels.size == 512
        assert labels.min() >= 0 and labels.max() < 4

    def test_trace_streams_points(self):
        w = KMeansWorkload(points=1024, dims=16, max_accesses=4000, threads=1)
        trace = w.trace(bases(w))[0]
        points = trace.va[trace.variable == 0]
        assert points.size > 100
        # Two Lloyd iterations interleave; within the stream, forward
        # motion is always one cache line (row-major streaming).
        deltas = np.diff(points[:100])
        moving = deltas[deltas > 0]
        assert moving.size > 0
        assert (moving == 64).mean() > 0.8


class TestHNSW:
    def test_search_returns_nodes(self):
        w = HNSWWorkload(nodes=512, dims=8, queries=16)
        results = w.run_reference()
        assert results.size == 16
        assert (results < 512).all()

    def test_greedy_descent_improves(self):
        """The returned node is at least as close as the entry node."""
        w = HNSWWorkload(nodes=512, dims=8, queries=8)
        _results, visited = w._search(0)
        for path in visited:
            assert path.size >= 1

    def test_trace_mixes_vectors_and_adjacency(self):
        w = HNSWWorkload(nodes=512, dims=8, queries=32, max_accesses=4000, threads=1)
        trace = w.trace(bases(w))[0]
        assert {0, 1} <= set(trace.variable.tolist())


class TestIVFPQ:
    def test_probed_lists_in_range(self):
        w = IVFPQWorkload(lists=64, queries=8, probes=4)
        probed = w.probed_lists()
        assert probed.shape == (8, 4)
        assert (probed < 64).all()

    def test_trace_dominant_variable_is_lists(self):
        w = IVFPQWorkload(max_accesses=8000, threads=1)
        trace = w.trace(bases(w))[0]
        counts = np.bincount(trace.variable[trace.variable >= 0])
        assert counts.argmax() == 1  # inverted lists dominate
