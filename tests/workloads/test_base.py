"""Tests for the workload pattern helpers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads.base import (
    VariableSpec,
    gather_addresses,
    hotspot_addresses,
    pointer_chase_addresses,
    random_addresses,
    strided_addresses,
    tagged_trace,
)

SIZE = 1 << 20


class TestVariableSpec:
    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            VariableSpec("x", 0)


class TestStrided:
    def test_constant_stride(self):
        addresses = strided_addresses(0x1000, SIZE, 4, stride_lines=2)
        assert np.diff(addresses).tolist() == [128, 128, 128]

    def test_wraps_at_size(self):
        addresses = strided_addresses(0, 256, 8, stride_lines=1)
        assert addresses.max() < 256

    def test_start_line_offsets(self):
        a = strided_addresses(0, SIZE, 4, 1, start_line=0)
        b = strided_addresses(0, SIZE, 4, 1, start_line=2)
        assert b[0] == a[2]

    def test_empty(self):
        assert strided_addresses(0, SIZE, 0).size == 0


class TestRandomAndHotspot:
    def test_random_within_bounds_and_aligned(self):
        rng = np.random.default_rng(0)
        addresses = random_addresses(0x4000, SIZE, 256, rng)
        assert (addresses >= 0x4000).all()
        assert (addresses < 0x4000 + SIZE).all()
        assert (addresses % 64 == 0).all()

    def test_hotspot_concentrates(self):
        rng = np.random.default_rng(1)
        addresses = hotspot_addresses(0, SIZE, 4000, rng, hot_fraction=0.1)
        in_hot = (addresses < SIZE * 0.1).mean()
        assert in_hot > 0.8

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert random_addresses(0, SIZE, 0, rng).size == 0
        assert hotspot_addresses(0, SIZE, 0, rng).size == 0


class TestGather:
    def test_indexing(self):
        addresses = gather_addresses(0x100, 8, np.array([0, 2, 5]))
        assert addresses.tolist() == [0x100, 0x110, 0x128]


class TestPointerChase:
    def test_visits_are_dependent_chain(self):
        rng = np.random.default_rng(2)
        addresses = pointer_chase_addresses(0, SIZE, 100, rng)
        assert addresses.size == 100
        # A permutation walk rarely revisits within a short prefix.
        assert np.unique(addresses[:50]).size > 40

    def test_within_bounds(self):
        rng = np.random.default_rng(3)
        addresses = pointer_chase_addresses(0x1000, 4096, 64, rng)
        assert (addresses >= 0x1000).all()
        assert (addresses < 0x1000 + 4096).all()


class TestTaggedTrace:
    def test_tags_and_writes(self):
        trace = tagged_trace(
            [
                (np.array([0, 64], dtype=np.uint64), 0, False),
                (np.array([128], dtype=np.uint64), 1, True),
            ]
        )
        assert len(trace) == 3
        assert set(trace.variable.tolist()) == {0, 1}
        assert trace.is_write.sum() == 1

    def test_proportional_interleave(self):
        big = np.arange(8, dtype=np.uint64)
        small = np.arange(100, 102, dtype=np.uint64)
        trace = tagged_trace([(big, 0, False), (small, 1, False)])
        positions = np.nonzero(trace.variable == 1)[0]
        # The two small-stream accesses spread across the merged trace.
        assert positions[0] < 5
        assert positions[1] > 4

    def test_phase_concatenation(self):
        trace = tagged_trace(
            [
                (np.array([1], dtype=np.uint64), 0, False),
                (np.array([2], dtype=np.uint64), 1, False),
            ],
            interleave=False,
        )
        assert trace.va.tolist() == [1, 2]

    def test_empty_streams_skipped(self):
        trace = tagged_trace([(np.zeros(0, dtype=np.uint64), 0, False)])
        assert len(trace) == 0
