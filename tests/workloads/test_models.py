"""Tests for the Table-1-calibrated application models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.models import (
    MajorVariableModel,
    ModeledWorkload,
    major_sizes_mb,
)
from repro.workloads.parsec import PARSEC_TABLE1, parsec_suite, parsec_workload
from repro.workloads.spec import SPEC2006_TABLE1, spec2006_suite, spec2006_workload


def bases(workload) -> dict[str, int]:
    base = {}
    cursor = 0x10000000
    for spec in workload.variables():
        base[spec.name] = cursor
        cursor += spec.size_bytes + 4096
    return base


class TestSizeRamp:
    def test_mean_and_min_exact(self):
        sizes = major_sizes_mb(10, avg_mb=59, min_mb=4)
        assert np.mean(sizes) == pytest.approx(59)
        assert min(sizes) == pytest.approx(4)

    def test_single_variable(self):
        assert major_sizes_mb(1, 910, 910) == [910]

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            major_sizes_mb(0, 1, 1)


class TestMajorVariableModel:
    def test_alloc_clamped(self):
        tiny = MajorVariableModel("v", nominal_mb=0.001, pattern="stream")
        huge = MajorVariableModel("w", nominal_mb=10_000, pattern="stream")
        assert tiny.alloc_bytes == 2 * 1024 * 1024
        assert huge.alloc_bytes == 16 * 1024 * 1024

    def test_unknown_pattern(self):
        with pytest.raises(ConfigError):
            MajorVariableModel("v", 1, "zigzag")


class TestModeledWorkload:
    def make(self, **overrides):
        majors = [
            MajorVariableModel("app_v0", 64, "stream"),
            MajorVariableModel("app_v1", 32, "stride16"),
        ]
        defaults = dict(
            name="app",
            majors=majors,
            nominal_variable_count=100,
            total_accesses=4000,
            threads=2,
        )
        defaults.update(overrides)
        return ModeledWorkload(**defaults)

    def test_variables_include_minors(self):
        w = self.make(minor_variables=3)
        assert len(w.variables()) == 5

    def test_minor_count_bounded_by_population(self):
        w = self.make(nominal_variable_count=2, minor_variables=10)
        assert len(w.variables()) == 2

    def test_major_share(self):
        w = self.make()
        traces = w.trace(bases(w))
        total = sum(len(t) for t in traces)
        major = sum(int((t.variable < 2).sum()) for t in traces)
        assert major / total > 0.7

    def test_traces_stay_in_variables(self):
        w = self.make()
        base = bases(w)
        specs = {spec.name: spec for spec in w.variables()}
        for trace in w.trace(base):
            for name, spec in specs.items():
                mask = trace.variable == w.variable_id(name)
                if mask.any():
                    va = trace.va[mask]
                    assert (va >= base[name]).all()
                    assert (va < base[name] + spec.size_bytes).all()

    def test_table1_nominal(self):
        w = self.make()
        row = w.table1_nominal()
        assert row["num_variables"] == 100
        assert row["num_major_variables"] == 2
        assert row["avg_major_size_mb"] == pytest.approx(48)

    def test_seed_changes_trace(self):
        w = self.make()
        base = bases(w)
        a = w.trace(base, input_seed=0)[0]
        b = w.trace(base, input_seed=1)[0]
        assert not np.array_equal(a.va, b.va)

    def test_requires_major(self):
        with pytest.raises(ConfigError):
            ModeledWorkload("x", majors=[], nominal_variable_count=10)


class TestCatalogues:
    def test_spec_suite_complete(self):
        suite = spec2006_suite()
        assert len(suite) == 12  # all SPEC2006 integer benchmarks

    def test_parsec_suite_complete(self):
        assert len(parsec_suite()) == 7

    @pytest.mark.parametrize("name", list(SPEC2006_TABLE1))
    def test_spec_matches_table1(self, name):
        w = spec2006_workload(name)
        row = w.table1_nominal()
        num_vars, num_major, avg, _min = SPEC2006_TABLE1[name]
        assert row["num_variables"] == num_vars
        assert row["num_major_variables"] == num_major
        assert row["avg_major_size_mb"] == pytest.approx(avg, rel=0.01)

    @pytest.mark.parametrize("name", list(PARSEC_TABLE1))
    def test_parsec_matches_table1(self, name):
        w = parsec_workload(name)
        row = w.table1_nominal()
        num_vars, num_major, avg, min_mb = PARSEC_TABLE1[name]
        assert row["num_variables"] == num_vars
        assert row["num_major_variables"] == num_major
        assert row["min_major_size_mb"] == pytest.approx(min_mb, rel=0.01)

    def test_mcf_uses_arc_node_records(self):
        w = spec2006_workload("mcf")
        assert w.majors[0].pattern == "record4"
        assert any(m.pattern == "chase" for m in w.majors)
