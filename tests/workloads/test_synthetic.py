"""Tests for the synthetic strided-copy workloads."""

import numpy as np
import pytest

from repro.workloads.synthetic import MixedStrideWorkload, StridedCopyWorkload


def bases(workload) -> dict[str, int]:
    base = {}
    cursor = 0x100000
    for spec in workload.variables():
        base[spec.name] = cursor
        cursor += spec.size_bytes + 4096
    return base


class TestStridedCopy:
    def test_variables(self):
        w = StridedCopyWorkload(stride_lines=4)
        names = [v.name for v in w.variables()]
        assert names == ["src", "dst"]

    def test_one_trace_per_thread(self):
        w = StridedCopyWorkload(threads=3, accesses_per_thread=100)
        traces = w.trace(bases(w))
        assert len(traces) == 3

    def test_reads_and_writes_paired(self):
        w = StridedCopyWorkload(threads=1, accesses_per_thread=100)
        trace = w.trace(bases(w))[0]
        assert trace.is_write.sum() == 50
        assert set(trace.variable.tolist()) == {0, 1}

    def test_stride_visible_in_src_stream(self):
        w = StridedCopyWorkload(stride_lines=8, threads=1, accesses_per_thread=64)
        base = bases(w)
        trace = w.trace(base)[0]
        src = trace.va[trace.variable == 0]
        assert np.diff(src[:8]).tolist() == [8 * 64] * 7

    def test_input_seed_changes_phase_not_pattern(self):
        w = StridedCopyWorkload(stride_lines=4, threads=1, accesses_per_thread=64)
        base = bases(w)
        a = w.trace(base, input_seed=0)[0]
        b = w.trace(base, input_seed=1)[0]
        assert not np.array_equal(a.va, b.va)
        np.testing.assert_array_equal(np.diff(a.va[a.variable == 0])[:5],
                                      np.diff(b.va[b.variable == 0])[:5])


class TestMixedStride:
    def test_one_thread_per_stride(self):
        w = MixedStrideWorkload(strides=(1, 4, 16))
        assert w.threads == 3
        assert len(w.variables()) == 6

    def test_each_thread_has_own_variables(self):
        w = MixedStrideWorkload(strides=(1, 16), accesses_per_stride=32)
        traces = w.trace(bases(w))
        assert set(traces[0].variable.tolist()) == {0, 1}
        assert set(traces[1].variable.tolist()) == {2, 3}

    def test_empty_strides_rejected(self):
        with pytest.raises(ValueError):
            MixedStrideWorkload(strides=())

    def test_footprint(self):
        w = MixedStrideWorkload(strides=(1, 2), buffer_bytes=1 << 20)
        assert w.total_footprint() == 4 << 20
