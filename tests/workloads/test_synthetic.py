"""Tests for the synthetic strided-copy workloads."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads.synthetic import (
    MixedStrideWorkload,
    PhaseShiftWorkload,
    StridedCopyWorkload,
)


def bases(workload) -> dict[str, int]:
    base = {}
    cursor = 0x100000
    for spec in workload.variables():
        base[spec.name] = cursor
        cursor += spec.size_bytes + 4096
    return base


class TestStridedCopy:
    def test_variables(self):
        w = StridedCopyWorkload(stride_lines=4)
        names = [v.name for v in w.variables()]
        assert names == ["src", "dst"]

    def test_one_trace_per_thread(self):
        w = StridedCopyWorkload(threads=3, accesses_per_thread=100)
        traces = w.trace(bases(w))
        assert len(traces) == 3

    def test_reads_and_writes_paired(self):
        w = StridedCopyWorkload(threads=1, accesses_per_thread=100)
        trace = w.trace(bases(w))[0]
        assert trace.is_write.sum() == 50
        assert set(trace.variable.tolist()) == {0, 1}

    def test_stride_visible_in_src_stream(self):
        w = StridedCopyWorkload(stride_lines=8, threads=1, accesses_per_thread=64)
        base = bases(w)
        trace = w.trace(base)[0]
        src = trace.va[trace.variable == 0]
        assert np.diff(src[:8]).tolist() == [8 * 64] * 7

    def test_input_seed_changes_phase_not_pattern(self):
        w = StridedCopyWorkload(stride_lines=4, threads=1, accesses_per_thread=64)
        base = bases(w)
        a = w.trace(base, input_seed=0)[0]
        b = w.trace(base, input_seed=1)[0]
        assert not np.array_equal(a.va, b.va)
        np.testing.assert_array_equal(np.diff(a.va[a.variable == 0])[:5],
                                      np.diff(b.va[b.variable == 0])[:5])


class TestMixedStride:
    def test_one_thread_per_stride(self):
        w = MixedStrideWorkload(strides=(1, 4, 16))
        assert w.threads == 3
        assert len(w.variables()) == 6

    def test_each_thread_has_own_variables(self):
        w = MixedStrideWorkload(strides=(1, 16), accesses_per_stride=32)
        traces = w.trace(bases(w))
        assert set(traces[0].variable.tolist()) == {0, 1}
        assert set(traces[1].variable.tolist()) == {2, 3}

    def test_empty_strides_rejected(self):
        with pytest.raises(ValueError):
            MixedStrideWorkload(strides=())

    def test_footprint(self):
        w = MixedStrideWorkload(strides=(1, 2), buffer_bytes=1 << 20)
        assert w.total_footprint() == 4 << 20


class TestPhaseShift:
    def test_single_buffer_single_thread(self):
        w = PhaseShiftWorkload(accesses_per_phase=256)
        assert [v.name for v in w.variables()] == ["data"]
        traces = w.trace(bases(w))
        assert len(traces) == 1
        assert traces[0].va.size == 256 * 4

    def test_phases_are_concatenated_in_order(self):
        w = PhaseShiftWorkload(
            accesses_per_phase=128, phases=("stream", "tiled")
        )
        base = bases(w)
        trace = w.trace(base)[0]
        # First phase is the stride-1 stream: consecutive lines.
        assert np.diff(trace.va[:8]).tolist() == [64] * 7
        # Second phase lands on tile-aligned record headers.
        tiled = trace.va[128:]
        assert (((tiled - base["data"]) % (32 * 64)) == 0).all()

    def test_sweep_dwells_within_one_tile(self):
        w = PhaseShiftWorkload(
            accesses_per_phase=4096, dwell=512, phases=("sweep",)
        )
        base = bases(w)
        lines = (w.trace(base)[0].va - base["data"]) // 64
        tiles = lines // 32
        for start in range(0, 4096, 512):
            assert np.unique(tiles[start : start + 512]).size == 1

    def test_trace_is_deterministic_per_seed(self):
        w = PhaseShiftWorkload(accesses_per_phase=512)
        base = bases(w)
        a = w.trace(base, input_seed=3)[0]
        b = w.trace(base, input_seed=3)[0]
        np.testing.assert_array_equal(a.va, b.va)
        c = w.trace(base, input_seed=4)[0]
        assert not np.array_equal(a.va, c.va)

    def test_addresses_stay_in_buffer(self):
        w = PhaseShiftWorkload(buffer_bytes=1 << 20, accesses_per_phase=2048)
        base = bases(w)
        va = w.trace(base, input_seed=5)[0].va
        assert (va >= base["data"]).all()
        assert (va < base["data"] + w.buffer_bytes).all()

    def test_tiny_buffer_rejected(self):
        with pytest.raises(SimulationError):
            PhaseShiftWorkload(buffer_bytes=64)

    def test_unknown_phase_rejected(self):
        w = PhaseShiftWorkload(accesses_per_phase=64, phases=("zigzag",))
        with pytest.raises(SimulationError):
            w.trace(bases(w))
