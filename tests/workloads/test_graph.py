"""Tests for graph generation and the graph workloads."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.graph import (
    BFSWorkload,
    PageRankWorkload,
    SSSPWorkload,
    ragged_ranges,
    rmat_graph,
)


def bases(workload) -> dict[str, int]:
    base = {}
    cursor = 0x10000000
    for spec in workload.variables():
        base[spec.name] = cursor
        cursor += spec.size_bytes + 4096
    return base


class TestRaggedRanges:
    def test_basic(self):
        out = ragged_ranges(np.array([10, 20]), np.array([3, 2]))
        assert out.tolist() == [10, 11, 12, 20, 21]

    def test_empty(self):
        assert ragged_ranges(np.array([], dtype=int), np.array([], dtype=int)).size == 0

    def test_zero_counts_skipped(self):
        out = ragged_ranges(np.array([5, 9]), np.array([0, 2]))
        assert out.tolist() == [9, 10]


class TestRMAT:
    def test_sizes(self):
        graph = rmat_graph(scale=8, edge_factor=4, seed=0)
        assert graph.num_vertices == 256
        assert graph.num_edges == 1024

    def test_csr_consistency(self):
        graph = rmat_graph(scale=8, edge_factor=4, seed=1)
        assert graph.xadj[0] == 0
        assert graph.xadj[-1] == graph.num_edges
        assert (np.diff(graph.xadj) >= 0).all()
        assert (graph.adjncy < graph.num_vertices).all()

    def test_seeds_differ(self):
        a = rmat_graph(scale=8, edge_factor=4, seed=0)
        b = rmat_graph(scale=8, edge_factor=4, seed=1)
        assert not np.array_equal(a.adjncy, b.adjncy)

    def test_degree_skew(self):
        """R-MAT graphs are skewed: the max degree far exceeds the mean."""
        graph = rmat_graph(scale=10, edge_factor=8, seed=2)
        degrees = np.diff(graph.xadj)
        assert degrees.max() > 4 * degrees.mean()

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            rmat_graph(scale=0)


class TestBFS:
    def test_reference_levels_valid(self):
        w = BFSWorkload(scale=8, edge_factor=4)
        levels = w.run_reference()
        root = w._effective_root(w.graph(0))
        assert levels[root] == 0
        reached = levels[levels >= 0]
        assert reached.size > 1
        # Level sets are contiguous: every level from 0..max occurs.
        assert set(range(int(reached.max()) + 1)) <= set(reached.tolist())

    def test_trace_structure(self):
        w = BFSWorkload(scale=8, edge_factor=4, threads=2, max_accesses=2000)
        traces = w.trace(bases(w))
        assert len(traces) == 2
        merged_vars = np.concatenate([t.variable for t in traces])
        assert set(merged_vars.tolist()) <= {0, 1, 2, 3}

    def test_trace_budget_respected(self):
        w = BFSWorkload(scale=8, edge_factor=4, max_accesses=1000)
        total = sum(len(t) for t in w.trace(bases(w)))
        assert total <= 1100


class TestPageRank:
    def test_ranks_sum_to_one(self):
        w = PageRankWorkload(scale=8, edge_factor=4, iterations=3)
        ranks = w.run_reference()
        assert ranks.sum() == pytest.approx(1.0, abs=0.02)
        assert (ranks > 0).all()

    def test_trace_contains_gathers(self):
        w = PageRankWorkload(scale=8, edge_factor=4, max_accesses=2000)
        traces = w.trace(bases(w))
        merged = np.concatenate([t.variable for t in traces])
        assert 2 in merged  # rank_old gathers present


class TestSSSP:
    def test_distances_monotone_improve(self):
        w = SSSPWorkload(scale=8, edge_factor=4, rounds=2)
        d2 = w.run_reference()
        w3 = SSSPWorkload(scale=8, edge_factor=4, rounds=3)
        d3 = w3.run_reference()
        finite2 = np.isfinite(d2)
        assert (d3[finite2] <= d2[finite2]).all()
        assert np.isfinite(d3).sum() >= finite2.sum()

    def test_source_distance_zero(self):
        w = SSSPWorkload(scale=8, edge_factor=4)
        assert w.run_reference()[w.source] == 0.0

    def test_trace_has_writes(self):
        w = SSSPWorkload(scale=8, edge_factor=4, max_accesses=2000)
        traces = w.trace(bases(w))
        assert any(t.is_write.any() for t in traces)
