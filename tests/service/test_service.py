"""Tests for the batching service front-end and the isolation campaign."""

import json

import pytest

from repro.errors import ConfigError
from repro.service.campaign import run_service_campaign
from repro.service.registry import TenantSpec
from repro.service.service import MappingService
from repro.service.tenant import SharedArtifacts
from repro.workloads.synthetic import MixedStrideWorkload, StridedCopyWorkload


def fast_service(**kwargs) -> MappingService:
    kwargs.setdefault("shared", SharedArtifacts.create(backend="fast"))
    return MappingService(**kwargs)


def workload_a():
    return StridedCopyWorkload(stride_lines=8, accesses_per_thread=1200)


def workload_b():
    return MixedStrideWorkload(strides=(1, 4), accesses_per_stride=600)


class TestFrontEnd:
    def test_submit_requires_admission(self):
        service = fast_service()
        with pytest.raises(ConfigError, match="not admitted"):
            service.submit("ghost", workload_a())

    def test_drain_runs_lanes_and_reports(self):
        service = fast_service()
        service.admit(TenantSpec("a", system="sdm_bsm_ml4", seed=1))
        service.admit(TenantSpec("b", system="bs_dm", seed=2))
        service.submit("a", workload_a())
        service.submit("b", workload_b())
        assert service.pending == 2
        report = service.drain()
        assert service.pending == 0
        assert set(report.tenants) == {"a", "b"}
        for result in report.tenants.values():
            assert result.stats.requests > 0
        assert report.budget["tenants"].keys() == {"a", "b"}
        assert report.plan_cache["misses"] >= 1
        # The whole report serialises.
        json.dumps(report.to_dict())

    def test_idle_tenant_appears_with_empty_lane(self):
        service = fast_service()
        service.admit(TenantSpec("busy"))
        service.admit(TenantSpec("idle"))
        service.submit("busy", workload_a())
        report = service.drain()
        assert report.tenants["idle"].results == []
        assert report.tenants["idle"].stats is None
        assert report.tenants["idle"].health is None
        assert report.fingerprints()["idle"]["runs"] == []

    def test_lane_preserves_submission_order(self):
        service = fast_service()
        service.admit(TenantSpec("a"))
        service.submit("a", workload_a(), eval_seed=1)
        service.submit("a", workload_b(), eval_seed=2)
        report = service.drain()
        names = [r.workload for r in report.tenants["a"].results]
        assert names == [workload_a().name, workload_b().name]

    def test_evict_drops_queued_jobs(self):
        service = fast_service()
        service.admit(TenantSpec("a"))
        service.submit("a", workload_a())
        service.evict("a")
        assert service.pending == 0
        assert "a" not in service.registry

    def test_evict_reports_and_journals_dropped_jobs(self):
        """Regression: eviction must *account* queued jobs, not drop
        them silently — the count comes back and every job lands in
        the health journal as a structured rejection."""
        service = fast_service()
        service.admit(TenantSpec("a"))
        service.admit(TenantSpec("b"))
        service.submit("a", workload_a())
        service.submit("a", workload_b())
        service.submit("b", workload_b())
        dropped = service.evict("a")
        assert dropped == 2
        drops = [
            e for e in service.health.events if e["event"] == "job-dropped"
        ]
        assert len(drops) == 2
        assert {e["tenant"] for e in drops} == {"a"}
        assert {e["workload"] for e in drops} == {
            workload_a().name,
            workload_b().name,
        }
        # Tenant b's job is untouched; conservation holds post-drain.
        report = service.drain()
        assert len(report.tenants["b"].results) == 1
        assert service.health.violations() == []
        assert service.evict("b") == 0

    def test_report_carries_service_health(self):
        service = fast_service()
        service.admit(TenantSpec("a"))
        service.submit("a", workload_a())
        report = service.drain()
        assert report.health is service.health
        assert report.health.submitted == 1
        assert report.health.completed == 1
        assert report.to_dict()["service_health"]["conserved"] is True

    def test_aggregate_stats_merge_per_tenant_stats(self):
        service = fast_service()
        service.admit(TenantSpec("a", seed=1))
        service.admit(TenantSpec("b", seed=2))
        service.submit("a", workload_a())
        service.submit("b", workload_b())
        report = service.drain()
        merged = report.tenants["a"].stats.merge(report.tenants["b"].stats)
        assert report.aggregate_stats.to_dict() == merged.to_dict()

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ConfigError):
            fast_service(max_workers=0)

    def test_plan_cache_shared_across_tenants(self):
        """Same system, same mappings: the second tenant's plans hit."""
        service = fast_service()
        service.admit(TenantSpec("a", system="bs_dm", seed=7))
        service.admit(TenantSpec("b", system="bs_dm", seed=7))
        service.submit("a", workload_a())
        service.submit("b", workload_a())
        report = service.drain()
        assert report.plan_cache["hits"] >= 1


class TestConcurrencyIsolation:
    def test_concurrent_fingerprints_match_solo(self):
        """The core isolation property, in miniature: each tenant's
        concurrent result is bit-identical to its solo run."""

        def run(submit_for):
            service = fast_service()
            service.admit(TenantSpec("a", system="sdm_bsm_ml4", seed=1))
            service.admit(TenantSpec("b", system="sdm_bsm", seed=2))
            if "a" in submit_for:
                service.submit("a", workload_a())
            if "b" in submit_for:
                service.submit("b", workload_b())
            return service.drain().fingerprints()

        solo_a = run({"a"})["a"]
        solo_b = run({"b"})["b"]
        both = run({"a", "b"})
        assert both["a"] == solo_a
        assert both["b"] == solo_b


class TestServiceCampaign:
    def test_quick_campaign_isolated(self):
        result = run_service_campaign(
            seed=0, tenants=2, quick=True, controllers=False
        )
        assert result.isolated
        assert result.mismatches == []
        assert result.tenants == ["tenant0", "tenant1"]
        assert result.faulty_tenant == "tenant0"
        # The shared cache really was shared across tenants and legs.
        assert result.plan_cache["hits"] > 0
        # The faulted leg hurt only the aggressor's health journal.
        victim = result.tenants[1]
        assert result.fault_health[victim] == result.concurrent_health[victim]
        aggressor = result.fault_health[result.faulty_tenant]
        assert aggressor["shard_retries"] >= 1
        # The continuous-front-end legs ran and held their laws.
        recovery = result.recovery_health
        assert recovery["quarantines"] >= 1
        assert recovery["restores"] >= 1
        assert recovery["lane_crashes"] >= 1
        assert recovery["violations"] == []
        assert result.recovery_fingerprints == result.solo_fingerprints
        assert result.overload["shed"] >= 1
        assert (
            result.overload["shed"] + result.overload["accepted"]
            == result.overload["burst"]
        )
        assert result.scale["admitted"] >= 200
        assert result.scale["probe_isolated"] is True
        assert result.scale["health"]["violations"] == []
        json.dumps(result.to_dict())
        assert "ISOLATED" in result.summary()

    def test_controller_leg_isolated(self):
        result = run_service_campaign(
            seed=0, tenants=2, quick=True, controllers=True,
            frontend_legs=False,
        )
        assert result.isolated
        controllers = result.controller_fingerprints
        assert set(controllers["solo"]) == {"tenant0", "tenant1"}
        for name, kinds in controllers["solo"].items():
            assert controllers["concurrent"][name] == kinds
