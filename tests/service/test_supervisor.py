"""Tests for lane supervision: strikes, restarts, quarantine, restore."""

import time

from repro.faults import FaultPlan
from repro.faults.sites import SERVICE_LANE_CRASH, SERVICE_LANE_STALL
from repro.service.frontend import ServiceFrontend
from repro.service.registry import TenantSpec
from repro.service.tenant import SharedArtifacts
from repro.workloads.synthetic import StridedCopyWorkload

SHARED = SharedArtifacts.create(backend="fast")


def tiny_workload() -> StridedCopyWorkload:
    return StridedCopyWorkload(stride_lines=4, accesses_per_thread=256)


def frontend(**kwargs) -> ServiceFrontend:
    kwargs.setdefault("shared", SHARED)
    kwargs.setdefault("supervise_interval_s", 0.002)
    return ServiceFrontend(**kwargs)


def wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.003)


class TestCrashRecovery:
    def test_single_crash_restarts_without_quarantine(self):
        plan = FaultPlan.single(SERVICE_LANE_CRASH, times=1, match="a")
        with frontend(faults=plan, max_strikes=3) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            handle = fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            # The crashed lane requeued the job; the restarted lane ran it.
            assert handle.status == "completed"
            assert fe.health.lane_crashes == 1
            assert fe.health.lane_restarts == 1
            assert fe.health.quarantines == 0
            assert fe.health.violations() == []

    def test_strikes_accumulate_to_quarantine_then_restore(self):
        plan = FaultPlan.single(SERVICE_LANE_CRASH, times=2, match="a")
        with frontend(
            faults=plan, max_strikes=2, quarantine_s=0.05
        ) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            handle = fe.submit("a", tiny_workload())
            wait_for(
                lambda: fe.health.quarantines >= 1, message="quarantine"
            )
            # The queued job was dropped (journaled), not lost.
            assert handle.wait(10) and handle.status == "dropped"
            assert fe.health.lane_crashes == 2
            wait_for(lambda: fe.health.restores >= 1, message="restore")
            events = [e["event"] for e in fe.health.events]
            assert "tenant-restored" in events
            # The restored lane serves again, bit-identically.
            retry = fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            assert retry.status == "completed"
            assert fe.health.violations() == []

    def test_restart_rebuilds_context_from_registry(self):
        plan = FaultPlan.single(SERVICE_LANE_CRASH, times=1, match="a")
        with frontend(faults=plan) as fe:
            before = fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            wait_for(
                lambda: fe.health.lane_restarts >= 1, message="restart"
            )
            after = fe.registry.get("a")
            assert after is not before
            assert after.namespace == before.namespace  # same slice


class TestStallAbandonment:
    def test_wedged_job_abandoned_lane_restarted(self):
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.6, match="a"
        )
        with frontend(faults=plan, deadline_s=0.1, max_strikes=5) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            wedged = fe.submit("a", tiny_workload())
            assert wedged.wait(10)
            assert wedged.status == "timeout"
            assert fe.health.lane_abandonments == 1
            # The replacement thread still serves the tenant.
            follow_up = fe.submit("a", tiny_workload(), eval_seed=2)
            fe.drain(timeout=60)
            assert follow_up.status == "completed"
            assert fe.health.violations() == []

    def test_stale_thread_result_is_discarded(self):
        """The abandoned worker finishes eventually; its result must not
        leak into the lane (generation token mismatch)."""
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.2, match="a"
        )
        with frontend(faults=plan, deadline_s=0.05, max_strikes=5) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            wedged = fe.submit("a", tiny_workload())
            assert wedged.wait(10) and wedged.status == "timeout"
            time.sleep(0.4)  # let the stale worker wake up and bail
            report = fe.drain(timeout=30)
            assert report.tenants["a"].results == []
            assert fe.health.completed == 0
            assert fe.health.violations() == []


class TestSweepMechanics:
    def test_sweep_is_idempotent_on_healthy_lanes(self):
        with frontend() as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            before = len(fe.health.events)
            for _ in range(5):
                fe.supervisor.sweep()
            assert len(fe.health.events) == before

    def test_supervisor_stop_is_idempotent(self):
        fe = frontend()
        fe.admit(TenantSpec("a", system="bs_dm", quota=2))
        fe.supervisor.stop()
        fe.supervisor.stop()
        fe.close()

    def test_evicted_tenant_not_restarted(self):
        plan = FaultPlan.single(SERVICE_LANE_CRASH, times=1, match="a")
        with frontend(faults=plan) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            fe.supervisor.stop()  # deterministic: we drive sweeps by hand
            fe.submit("a", tiny_workload())
            # Wait for the injected crash to kill the lane thread.
            wait_for(
                lambda: fe._lanes["a"].thread is not None
                and not fe._lanes["a"].thread.is_alive(),
                message="lane crash",
            )
            fe.evict("a")
            fe.supervisor.sweep()  # must not resurrect the evicted lane
            assert "a" not in fe.registry
            with fe._lanes_lock:
                assert "a" not in fe._lanes
            assert fe.health.violations() == []
