"""Tests for the service-degradation journal and its merge laws."""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.health import ServiceHealth

_counters = st.integers(min_value=0, max_value=1000)

_events = st.lists(
    st.fixed_dictionaries(
        {
            "event": st.sampled_from(
                ["job-shed", "lane-crash", "tenant-quarantined"]
            ),
            "tenant": st.sampled_from(["a", "b"]),
            "reason": st.just("test"),
        }
    ),
    max_size=4,
)

_healths = st.builds(
    ServiceHealth,
    submitted=_counters,
    completed=_counters,
    failed=_counters,
    retried=_counters,
    timeouts=_counters,
    shed=_counters,
    dropped=_counters,
    rejected=_counters,
    lane_crashes=_counters,
    lane_restarts=_counters,
    quarantines=_counters,
    restores=_counters,
    events=_events,
)

_COUNTER_FIELDS = (
    "submitted", "completed", "failed", "retried", "timeouts", "shed",
    "dropped", "rejected", "lane_crashes", "lane_restarts",
    "lane_abandonments", "quarantines", "restores", "preemptions",
    "reclaims", "trims", "demotions",
)


def _as_tuple(health: ServiceHealth) -> tuple:
    return tuple(getattr(health, name) for name in _COUNTER_FIELDS) + (
        list(health.events),
    )


class TestMergeLaws:
    @given(_healths)
    @settings(max_examples=50, deadline=None)
    def test_empty_is_identity(self, health):
        assert _as_tuple(health.merge(ServiceHealth.empty())) == _as_tuple(
            health
        )
        assert _as_tuple(ServiceHealth.empty().merge(health)) == _as_tuple(
            health
        )

    @given(_healths, _healths, _healths)
    @settings(max_examples=50, deadline=None)
    def test_associative(self, a, b, c):
        assert _as_tuple(a.merge(b).merge(c)) == _as_tuple(
            a.merge(b.merge(c))
        )

    @given(_healths, _healths)
    @settings(max_examples=50, deadline=None)
    def test_counters_add_journals_concatenate(self, a, b):
        merged = a.merge(b)
        for name in _COUNTER_FIELDS:
            assert getattr(merged, name) == getattr(a, name) + getattr(
                b, name
            )
        assert merged.events == list(a.events) + list(b.events)

    @given(_healths, _healths)
    @settings(max_examples=50, deadline=None)
    def test_add_operator_matches_merge(self, a, b):
        assert _as_tuple(a + b) == _as_tuple(a.merge(b))

    @given(_healths)
    @settings(max_examples=50, deadline=None)
    def test_dict_roundtrip(self, health):
        assert _as_tuple(ServiceHealth.from_dict(health.to_dict())) == (
            _as_tuple(health)
        )


class TestRecording:
    def test_record_journals_and_counts(self):
        health = ServiceHealth()
        health.record("job-shed", "a", "queue full", workload="w")
        assert health.shed == 1
        assert health.events == [
            {
                "event": "job-shed",
                "tenant": "a",
                "reason": "queue full",
                "workload": "w",
            }
        ]

    def test_unknown_event_journals_without_counter(self):
        health = ServiceHealth()
        health.record("novel-event", "a", "reason")
        assert len(health.events) == 1
        assert health.ok is False

    def test_ok_requires_no_events_and_conservation(self):
        health = ServiceHealth()
        assert health.ok
        health.note_submitted()
        assert not health.ok  # one job pending
        health.note_completed()
        assert health.ok


class TestConservation:
    def test_all_terminal_states_count(self):
        health = ServiceHealth()
        health.note_submitted(4)
        health.note_completed()
        health.record("job-failed", "a", "boom")
        health.record("job-timeout", "a", "deadline")
        health.record("job-dropped", "a", "evicted")
        assert health.accounted == 4
        assert health.pending == 0
        assert health.conserved()
        assert health.violations() == []

    def test_lost_job_is_a_violation(self):
        health = ServiceHealth()
        health.note_submitted(2)
        health.note_completed()
        assert not health.conserved()
        assert "unaccounted" in health.violations()[0]

    def test_overcounting_is_a_violation(self):
        health = ServiceHealth()
        health.note_completed(2)
        assert "over-counts" in health.violations()[0]

    def test_shed_and_rejected_outside_conservation(self):
        """Never-accepted submissions don't enter the accepted ledger."""
        health = ServiceHealth()
        health.record("job-shed", "a", "queue full")
        health.record("job-rejected", "a", "quarantined")
        assert health.shed == 1 and health.rejected == 1
        assert health.conserved()

    def test_concurrent_recording_is_exact(self):
        health = ServiceHealth()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(200):
                health.note_submitted()
                health.record("job-shed", "t", "pressure")
                health.note_completed()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert health.submitted == health.completed == 1600
        assert health.shed == 1600 and len(health.events) == 1600
        assert health.conserved()

    def test_summary_flags_broken_accounting(self):
        health = ServiceHealth()
        health.note_submitted(3)
        health.record("job-shed", "a", "x")
        assert "ACCOUNTING BROKEN" in health.summary()
