"""Tests for tenant admission and mapping-budget carving."""

import pytest

from repro.errors import CMTError, ConfigError
from repro.service.registry import TenantRegistry, TenantSpec
from repro.service.tenant import SharedArtifacts
from repro.system.config import SystemConfig, system_by_key


def registry(**kwargs) -> TenantRegistry:
    kwargs.setdefault("shared", SharedArtifacts.create())
    return TenantRegistry(**kwargs)


class TestTenantSpec:
    def test_system_resolved_from_key(self):
        spec = TenantSpec("t", system="bs_dm")
        assert spec.resolved_system().key == "bs_dm"

    def test_system_config_passes_through(self):
        system = system_by_key("sdm_bsm")
        assert TenantSpec("t", system=system).resolved_system() is system

    def test_defaults(self):
        spec = TenantSpec("t")
        assert spec.quota == 4
        assert isinstance(spec.resolved_system(), SystemConfig)


class TestAdmission:
    def test_namespaces_carved_contiguously(self):
        reg = registry()
        a = reg.admit(TenantSpec("a", quota=4))
        b = reg.admit(TenantSpec("b", quota=2))
        assert a.namespace.base == 1 and a.namespace.end == 5
        assert b.namespace.base == 5 and b.namespace.end == 7
        assert not a.namespace.overlaps(b.namespace)
        assert reg.remaining_slots == 256 - 1 - 6

    def test_duplicate_name_rejected(self):
        reg = registry()
        reg.admit(TenantSpec("a"))
        with pytest.raises(ConfigError, match="already admitted"):
            reg.admit(TenantSpec("a"))

    def test_zero_quota_rejected(self):
        with pytest.raises(ConfigError, match="quota"):
            registry().admit(TenantSpec("a", quota=0))

    def test_budget_exhaustion(self):
        reg = registry(max_mappings=8)  # 7 carvable after identity
        reg.admit(TenantSpec("a", quota=4))
        with pytest.raises(CMTError, match="budget exhausted"):
            reg.admit(TenantSpec("b", quota=4))
        # The failed admission reserved nothing.
        assert "b" not in reg
        reg.admit(TenantSpec("b", quota=3))

    def test_tiny_table_rejected(self):
        with pytest.raises(ConfigError):
            registry(max_mappings=1)

    def test_contexts_share_artifacts(self):
        shared = SharedArtifacts.create()
        reg = registry(shared=shared)
        a = reg.admit(TenantSpec("a"))
        b = reg.admit(TenantSpec("b"))
        assert a.shared is shared and b.shared is shared
        assert a.namespace != b.namespace


class TestEviction:
    def test_evicted_slice_is_reused_first_fit(self):
        reg = registry()
        reg.admit(TenantSpec("a", quota=4))
        reg.admit(TenantSpec("b", quota=2))
        before = reg.remaining_slots
        reg.evict("a")
        assert "a" not in reg
        assert reg.remaining_slots == before + 4
        # A smaller tenant lands inside the freed slice.
        c = reg.admit(TenantSpec("c", quota=3))
        assert c.namespace.base == 1
        # The remainder of the slice is still carvable.
        d = reg.admit(TenantSpec("d", quota=1))
        assert d.namespace.base == 4

    def test_evict_unknown_rejected(self):
        with pytest.raises(ConfigError, match="not admitted"):
            registry().evict("ghost")

    def test_lookups(self):
        reg = registry()
        context = reg.admit(TenantSpec("a"))
        assert reg.get("a") is context
        assert "a" in reg and len(reg) == 1
        assert reg.names == ["a"]
        assert reg.contexts() == [context]
        with pytest.raises(ConfigError):
            reg.get("ghost")

    def test_report_shows_partition(self):
        reg = registry()
        reg.admit(TenantSpec("a", quota=4))
        report = reg.report()
        assert report["max_mappings"] == 256
        assert report["tenants"]["a"] == {
            "tenant": "a",
            "base": 1,
            "capacity": 4,
        }
