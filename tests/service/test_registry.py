"""Tests for tenant admission and mapping-budget carving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CMTError, ConfigError
from repro.service.registry import PRIORITIES, TenantRegistry, TenantSpec
from repro.service.tenant import SharedArtifacts
from repro.system.config import SystemConfig, system_by_key

#: One shared-artifacts instance for the whole module: admission tests
#: exercise the budget partition, not artifact construction.
SHARED = SharedArtifacts.create()


def registry(**kwargs) -> TenantRegistry:
    kwargs.setdefault("shared", SHARED)
    return TenantRegistry(**kwargs)


class TestTenantSpec:
    def test_system_resolved_from_key(self):
        spec = TenantSpec("t", system="bs_dm")
        assert spec.resolved_system().key == "bs_dm"

    def test_system_config_passes_through(self):
        system = system_by_key("sdm_bsm")
        assert TenantSpec("t", system=system).resolved_system() is system

    def test_defaults(self):
        spec = TenantSpec("t")
        assert spec.quota == 4
        assert isinstance(spec.resolved_system(), SystemConfig)


class TestAdmission:
    def test_namespaces_carved_contiguously(self):
        reg = registry()
        a = reg.admit(TenantSpec("a", quota=4))
        b = reg.admit(TenantSpec("b", quota=2))
        assert a.namespace.base == 1 and a.namespace.end == 5
        assert b.namespace.base == 5 and b.namespace.end == 7
        assert not a.namespace.overlaps(b.namespace)
        assert reg.remaining_slots == 256 - 1 - 6

    def test_duplicate_name_rejected(self):
        reg = registry()
        reg.admit(TenantSpec("a"))
        with pytest.raises(ConfigError, match="already admitted"):
            reg.admit(TenantSpec("a"))

    def test_zero_quota_rejected(self):
        with pytest.raises(ConfigError, match="quota"):
            registry().admit(TenantSpec("a", quota=0))

    def test_budget_exhaustion(self):
        reg = registry(max_mappings=8)  # 7 carvable after identity
        reg.admit(TenantSpec("a", quota=4))
        with pytest.raises(CMTError, match="budget exhausted"):
            reg.admit(TenantSpec("b", quota=4))
        # The failed admission reserved nothing.
        assert "b" not in reg
        reg.admit(TenantSpec("b", quota=3))

    def test_tiny_table_rejected(self):
        with pytest.raises(ConfigError):
            registry(max_mappings=1)

    def test_contexts_share_artifacts(self):
        shared = SharedArtifacts.create()
        reg = registry(shared=shared)
        a = reg.admit(TenantSpec("a"))
        b = reg.admit(TenantSpec("b"))
        assert a.shared is shared and b.shared is shared
        assert a.namespace != b.namespace


class TestEviction:
    def test_evicted_slice_is_reused_first_fit(self):
        reg = registry()
        reg.admit(TenantSpec("a", quota=4))
        reg.admit(TenantSpec("b", quota=2))
        before = reg.remaining_slots
        reg.evict("a")
        assert "a" not in reg
        assert reg.remaining_slots == before + 4
        # A smaller tenant lands inside the freed slice.
        c = reg.admit(TenantSpec("c", quota=3))
        assert c.namespace.base == 1
        # The remainder of the slice is still carvable.
        d = reg.admit(TenantSpec("d", quota=1))
        assert d.namespace.base == 4

    def test_evict_unknown_rejected(self):
        with pytest.raises(ConfigError, match="not admitted"):
            registry().evict("ghost")

    def test_lookups(self):
        reg = registry()
        context = reg.admit(TenantSpec("a"))
        assert reg.get("a") is context
        assert "a" in reg and len(reg) == 1
        assert reg.names == ["a"]
        assert reg.contexts() == [context]
        with pytest.raises(ConfigError):
            reg.get("ghost")

    def test_report_shows_partition(self):
        reg = registry()
        reg.admit(TenantSpec("a", quota=4))
        report = reg.report()
        assert report["max_mappings"] == 256
        assert report["tenants"]["a"] == {
            "tenant": "a",
            "base": 1,
            "capacity": 4,
        }
        assert report["priorities"] == {"a": "standard"}

    def test_free_list_coalesces_adjacent_slices(self):
        reg = registry()
        for name, quota in (("a", 2), ("b", 2), ("c", 2), ("d", 2)):
            reg.admit(TenantSpec(name, quota=quota))
        # Release two adjacent holes out of order: they must merge so a
        # larger tenant can land in the combined range.
        reg.evict("c")
        reg.evict("b")
        e = reg.admit(TenantSpec("e", quota=4))
        assert e.namespace.base == 3
        assert reg.check_invariants() == []

    def test_tail_release_folds_into_bump_frontier(self):
        reg = registry(max_mappings=8)
        reg.admit(TenantSpec("a", quota=3))
        reg.admit(TenantSpec("b", quota=4))
        reg.evict("b")  # tail slice: folds back into the bump allocator
        reg.evict("a")
        c = reg.admit(TenantSpec("c", quota=7))
        assert c.namespace.base == 1
        assert reg.check_invariants() == []


class TestAdmissionController:
    def test_unknown_priority_rejected(self):
        with pytest.raises(ConfigError, match="priority"):
            registry().admit(TenantSpec("a", priority="platinum"))

    def test_min_quota_validated(self):
        with pytest.raises(ConfigError, match="min_quota"):
            registry().admit(TenantSpec("a", quota=4, min_quota=5))
        with pytest.raises(ConfigError, match="min_quota"):
            registry().admit(TenantSpec("a", quota=4, min_quota=0))

    def test_borrowed_slots_reclaimed_under_pressure(self):
        reg = registry(max_mappings=12)  # 11 carvable
        a = reg.admit(
            TenantSpec(
                "a", quota=8, min_quota=2, priority="best-effort"
            )
        )
        assert a.namespace.capacity == 8
        b = reg.admit(TenantSpec("b", quota=5))
        # The borrower shrank to its floor; the new tenant landed in
        # the reclaimed range.
        assert reg.get("a").namespace.capacity == 2
        assert reg.get("a").namespace.base == 1
        assert b.namespace.capacity == 5
        assert b.namespace.base == 3
        events = [e["event"] for e in reg.health.events]
        assert "quota-reclaimed" in events
        assert reg.check_invariants() == []

    def test_reclaim_visits_weakest_borrower_first(self):
        reg = registry(max_mappings=16)  # 15 carvable
        reg.admit(TenantSpec("strong", quota=6, min_quota=2,
                             priority="standard"))
        reg.admit(TenantSpec("weak", quota=6, min_quota=2,
                             priority="best-effort"))
        reg.admit(TenantSpec("new", quota=6, priority="standard"))
        # Only the best-effort borrower should have been shrunk.
        assert reg.get("weak").namespace.capacity == 2
        assert reg.get("strong").namespace.capacity == 6
        reclaimed = [
            e for e in reg.health.events if e["event"] == "quota-reclaimed"
        ]
        assert [e["tenant"] for e in reclaimed] == ["weak"]

    def test_request_trimmed_toward_its_floor(self):
        reg = registry(max_mappings=8)  # 7 carvable
        reg.admit(TenantSpec("a", quota=4))
        b = reg.admit(TenantSpec("b", quota=5, min_quota=2))
        assert b.namespace.capacity == 3
        trims = [
            e for e in reg.health.events if e["event"] == "admission-trimmed"
        ]
        assert trims and trims[0]["tenant"] == "b"
        assert trims[0]["granted"] == 3 and trims[0]["requested"] == 5

    def test_best_effort_preempted_for_higher_class(self):
        reg = registry(max_mappings=8)
        victims = []
        reg.preempt_hook = victims.append
        reg.admit(TenantSpec("cheap", quota=4, priority="best-effort"))
        b = reg.admit(TenantSpec("vip", quota=6, priority="standard"))
        assert "cheap" not in reg
        assert victims == ["cheap"]
        assert b.namespace.capacity == 6
        events = [e["event"] for e in reg.health.events]
        assert "tenant-preempted" in events

    def test_best_effort_cannot_preempt(self):
        reg = registry(max_mappings=8)
        reg.admit(TenantSpec("a", quota=4, priority="best-effort"))
        with pytest.raises(CMTError, match="budget exhausted"):
            reg.admit(TenantSpec("b", quota=6, priority="best-effort"))
        assert "a" in reg  # the incumbent survived

    def test_guaranteed_tenants_never_lend(self):
        reg = registry(max_mappings=8)
        reg.admit(
            TenantSpec("vip", quota=6, min_quota=2, priority="guaranteed")
        )
        with pytest.raises(CMTError, match="budget exhausted"):
            reg.admit(TenantSpec("b", quota=4, priority="standard"))
        assert reg.get("vip").namespace.capacity == 6

    def test_rebuild_keeps_namespace_fresh_context(self):
        reg = registry()
        old = reg.admit(TenantSpec("a", quota=4))
        new = reg.rebuild("a")
        assert new is not old
        assert new.namespace == old.namespace
        assert reg.get("a") is new

    def test_amend_swaps_spec_fields_in_place(self):
        reg = registry()
        reg.admit(
            TenantSpec("a", quota=4, backend_options={"workers": 2})
        )
        context = reg.amend("a", backend_options={"workers": 0})
        assert context.backend_options == {"workers": 0}
        assert reg.spec("a").backend_options == {"workers": 0}
        assert context.namespace == reg.get("a").namespace
        with pytest.raises(ConfigError, match="rename"):
            reg.amend("a", name="b")


#: A churn program: (action, tenant index, quota, min-quota, priority).
_churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["admit", "evict"]),
        st.integers(min_value=0, max_value=399),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(PRIORITIES),
    ),
    min_size=1,
    max_size=250,
)


class TestChurnProperties:
    """Hundreds of tenants through admit/evict: the laws never break."""

    @given(_churn_ops)
    @settings(max_examples=40, deadline=None)
    def test_budget_laws_hold_under_churn(self, ops):
        reg = registry()
        occupied: set[str] = set()
        for action, index, quota, min_quota, priority in ops:
            name = f"t{index}"
            if action == "admit" and name not in occupied:
                try:
                    reg.admit(
                        TenantSpec(
                            name,
                            quota=quota,
                            min_quota=min(min_quota, quota),
                            priority=priority,
                        )
                    )
                except CMTError:
                    assert name not in reg  # failure reserved nothing
                    continue
                occupied.add(name)
            elif action == "evict" and name in occupied:
                reg.evict(name)
                occupied.discard(name)
            else:
                continue
            # Preemption may evict best-effort tenants behind our back;
            # resync the mirror before checking the laws.
            occupied = {n for n in occupied if n in reg}
            assert reg.check_invariants() == []
            carved = sum(
                context.namespace.capacity for context in reg.contexts()
            )
            assert carved <= reg.max_mappings - 1  # slot 0 reserved
            assert set(reg.names) == occupied
            assert 0 <= reg.remaining_slots <= reg.max_mappings - 1

    @given(_churn_ops)
    @settings(max_examples=15, deadline=None)
    def test_first_fit_reuses_lowest_feasible_hole(self, ops):
        """After any churn, a 1-slot admission lands on the lowest
        base no live namespace covers (first-fit over the coalesced
        free list, then the bump frontier)."""
        reg = registry()
        for action, index, quota, min_quota, priority in ops:
            name = f"t{index}"
            try:
                if action == "admit" and name not in reg:
                    reg.admit(TenantSpec(name, quota=quota))
                elif action == "evict" and name in reg:
                    reg.evict(name)
            except CMTError:
                continue
        taken = set()
        for context in reg.contexts():
            ns = context.namespace
            taken.update(range(ns.base, ns.end))
        expected = next(
            base for base in range(1, reg.max_mappings) if base not in taken
        )
        probe = reg.admit(TenantSpec("probe", quota=1))
        assert probe.namespace.base == expected
