"""Tests for SharedArtifacts and TenantContext: the split machine core."""

import pytest

from repro.core.cmt import MappingNamespace
from repro.errors import ConfigError
from repro.hbm.plancache import PlanCache
from repro.service.tenant import SharedArtifacts, TenantContext
from repro.system.config import system_by_key
from repro.system.machine import Machine
from repro.workloads.synthetic import StridedCopyWorkload

SYSTEM = system_by_key("sdm_bsm_ml4")


def small_workload():
    return StridedCopyWorkload(stride_lines=8, accesses_per_thread=1200)


class TestSharedArtifacts:
    def test_create_derives_geometry_from_device(self):
        shared = SharedArtifacts.create()
        assert shared.geometry.total_bytes == shared.hbm.total_bytes
        assert shared.backend == "fast"
        assert isinstance(shared.plan_cache, PlanCache)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown memory model"):
            SharedArtifacts.create(backend="nope")

    def test_frozen(self):
        shared = SharedArtifacts.create()
        with pytest.raises(AttributeError):
            shared.backend = "vector"

    def test_explicit_plan_cache_is_used(self):
        cache = PlanCache()
        shared = SharedArtifacts.create(plan_cache=cache)
        assert shared.plan_cache is cache


class TestTenantContext:
    def test_inherits_shared_defaults(self):
        shared = SharedArtifacts.create(
            backend="fast", backend_options={"max_inflight": 8}
        )
        context = TenantContext("t", SYSTEM, shared)
        assert context.backend == "fast"
        assert context.backend_options == {"max_inflight": 8}
        assert context.hbm is shared.hbm
        assert context.geometry is shared.geometry

    def test_overrides_do_not_touch_shared(self):
        shared = SharedArtifacts.create()
        context = TenantContext(
            "t", SYSTEM, shared, backend="vector", backend_options={}
        )
        assert context.backend == "vector"
        assert shared.backend == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            TenantContext("t", SYSTEM, SharedArtifacts.create(), engine="gpu")

    def test_unknown_guard_mode_rejected(self):
        with pytest.raises(ConfigError, match="guard mode"):
            TenantContext(
                "t", SYSTEM, SharedArtifacts.create(), guard_mode="explode"
            )

    def test_sdam_registers_namespace(self):
        namespace = MappingNamespace("t", 1, 4)
        context = TenantContext(
            "t", SYSTEM, SharedArtifacts.create(), namespace=namespace
        )
        sdam = context._sdam()
        assert sdam.cmt.namespaces == {"t": namespace}
        # Each call builds a private controller: tenant-scoped state.
        assert context._sdam() is not sdam

    def test_run_matches_machine_facade(self):
        """The façade must be bit-identical to a bare tenant context."""
        workload = small_workload()
        machine = Machine(SYSTEM, seed=3)
        context = TenantContext(
            "solo", SYSTEM, SharedArtifacts.create(), seed=3
        )
        via_machine = machine.run(workload).fingerprint()
        via_context = context.run(workload).fingerprint()
        assert via_machine == via_context

    def test_run_uses_shared_plan_cache(self):
        cache = PlanCache()
        shared = SharedArtifacts.create(plan_cache=cache)
        context = TenantContext("t", SYSTEM, shared)
        context.run(small_workload())
        assert cache.misses > 0

    def test_namespace_quota_enforced_end_to_end(self):
        """A 4-cluster system cannot fit a 1-slot namespace."""
        from repro.errors import CMTError

        context = TenantContext(
            "tiny",
            SYSTEM,  # selects up to 4 distinct window permutations
            SharedArtifacts.create(),
            namespace=MappingNamespace("tiny", 1, 1),
        )
        with pytest.raises(CMTError, match="quota exhausted"):
            context.run(small_workload())

    def test_repr_names_tenant_and_namespace(self):
        context = TenantContext(
            "t",
            SYSTEM,
            SharedArtifacts.create(),
            namespace=MappingNamespace("t", 1, 2),
        )
        assert "t" in repr(context)
        assert "namespace" in repr(context)
