"""Tests for the continuous service front-end (lanes, shedding, deadlines)."""

import time

import pytest

from repro.errors import (
    ConfigError,
    ServiceOverloadError,
    TenantQuarantinedError,
)
from repro.faults import FaultPlan
from repro.faults.sites import SERVICE_JOB_CRASH, SERVICE_LANE_STALL
from repro.service.frontend import JobHandle, ServiceFrontend
from repro.service.registry import TenantSpec
from repro.service.tenant import SharedArtifacts
from repro.system.runner import RetryPolicy
from repro.workloads.synthetic import StridedCopyWorkload

#: Shared artifacts reused across tests (immutable by construction).
SHARED = SharedArtifacts.create(backend="fast")


def tiny_workload(accesses: int = 256) -> StridedCopyWorkload:
    return StridedCopyWorkload(stride_lines=4, accesses_per_thread=accesses)


def frontend(**kwargs) -> ServiceFrontend:
    kwargs.setdefault("shared", SHARED)
    kwargs.setdefault("supervise_interval_s", 0.002)
    return ServiceFrontend(**kwargs)


class TestJobHandle:
    def test_settles_exactly_once(self):
        handle = JobHandle(tenant="a", workload="w")
        assert handle.settle("completed", result=1)
        assert not handle.settle("failed", error="late")
        assert handle.status == "completed" and handle.result == 1
        assert handle.done and handle.wait(0)

    def test_rejects_non_terminal_states(self):
        with pytest.raises(ConfigError):
            JobHandle(tenant="a", workload="w").settle("running")


class TestSubmitAndDrain:
    def test_jobs_complete_and_report(self):
        with frontend() as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            handles = [
                fe.submit("a", tiny_workload(), eval_seed=seed)
                for seed in range(3)
            ]
            report = fe.drain(timeout=60)
            assert [h.status for h in handles] == ["completed"] * 3
            assert len(report.tenants["a"].results) == 3
            assert report.health is fe.health
            assert fe.health.completed == 3
            assert fe.health.violations() == []

    def test_submit_unknown_tenant_rejected(self):
        with frontend() as fe:
            with pytest.raises(ConfigError, match="not admitted"):
                fe.submit("ghost", tiny_workload())

    def test_closed_frontend_rejects_work(self):
        fe = frontend()
        fe.admit(TenantSpec("a", system="bs_dm", quota=2))
        fe.close()
        with pytest.raises(ConfigError, match="closed"):
            fe.submit("a", tiny_workload())
        with pytest.raises(ConfigError, match="closed"):
            fe.admit(TenantSpec("b", system="bs_dm", quota=2))

    def test_drain_is_a_checkpoint_not_a_shutdown(self):
        with frontend() as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            handle = fe.submit("a", tiny_workload(), eval_seed=2)
            fe.drain(timeout=60)
            assert handle.status == "completed"
            assert fe.health.completed == 2


class TestEviction:
    def test_evict_returns_and_journals_dropped_jobs(self):
        # A stalled lane keeps jobs queued so eviction must drop them.
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.5, match="a"
        )
        with frontend(faults=plan) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            handles = [
                fe.submit("a", tiny_workload(), eval_seed=seed)
                for seed in range(3)
            ]
            dropped = fe.evict("a")
            assert dropped >= 2  # queued jobs (+ the stalled one)
            drops = [
                e for e in fe.health.events if e["event"] == "job-dropped"
            ]
            assert len(drops) == dropped
            assert all(e["tenant"] == "a" for e in drops)
            terminal = [h for h in handles if h.status == "dropped"]
            assert len(terminal) == dropped
            assert fe.health.violations() == []
            assert "a" not in fe.registry

    def test_close_accounts_queued_jobs(self):
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.5, match="a"
        )
        fe = frontend(faults=plan)
        fe.admit(TenantSpec("a", system="bs_dm", quota=2))
        for seed in range(3):
            fe.submit("a", tiny_workload(), eval_seed=seed)
        dropped = fe.close()
        assert dropped >= 2
        assert fe.health.violations() == []


class TestOverload:
    def test_full_queue_sheds_with_retry_after(self):
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.4, match="a"
        )
        with frontend(faults=plan, queue_depth=1) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            caught = 0
            for seed in range(6):
                try:
                    fe.submit("a", tiny_workload(), eval_seed=seed)
                except ServiceOverloadError as error:
                    caught += 1
                    assert error.tenant == "a"
                    assert error.retry_after_s > 0
            assert caught >= 1
            assert fe.health.shed == caught
            shed_events = [
                e for e in fe.health.events if e["event"] == "job-shed"
            ]
            assert len(shed_events) == caught

    def test_sustained_sheds_demote_sharded_backend(self):
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.4, match="a"
        )
        with frontend(
            faults=plan, queue_depth=1, demote_after_sheds=2
        ) as fe:
            fe.admit(
                TenantSpec(
                    "a",
                    system="bs_dm",
                    quota=2,
                    backend="vector",
                    backend_options={"workers": 2},
                )
            )
            for seed in range(8):
                try:
                    fe.submit("a", tiny_workload(), eval_seed=seed)
                except ServiceOverloadError:
                    pass
            assert fe.health.demotions == 1
            assert fe.registry.spec("a").backend_options["workers"] == 0
            demotions = [
                e
                for e in fe.health.events
                if e["event"] == "pressure-demoted"
            ]
            assert demotions and demotions[0]["tenant"] == "a"


class TestDeadlines:
    def test_queued_job_past_deadline_times_out(self):
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.3, match="a"
        )
        with frontend(faults=plan, deadline_s=0.1) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            first = fe.submit("a", tiny_workload())
            second = fe.submit("a", tiny_workload(), eval_seed=2)
            assert first.wait(10) and second.wait(10)
            statuses = {first.status, second.status}
            assert statuses == {"timeout"}
            assert fe.health.timeouts == 2
            fe.drain(timeout=30)
            assert fe.health.violations() == []

    def test_retry_policy_reruns_transient_crashes(self):
        plan = FaultPlan.single(SERVICE_JOB_CRASH, times=1, match="a")
        with frontend(
            faults=plan,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.001),
        ) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            handle = fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            assert handle.status == "completed"
            assert handle.attempts == 2
            assert fe.health.retried == 1

    def test_exhausted_retries_fail_the_job(self):
        plan = FaultPlan.single(SERVICE_JOB_CRASH, times=1, match="a")
        with frontend(faults=plan, retry=RetryPolicy.none()) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            handle = fe.submit("a", tiny_workload())
            fe.drain(timeout=60)
            assert handle.status == "failed"
            assert "WorkerCrashError" in handle.error
            assert fe.health.failed == 1
            assert fe.health.violations() == []


class TestPreemption:
    def test_preempted_tenants_jobs_are_accounted(self):
        # A tiny table: admitting the VIP preempts the best-effort
        # tenant whose lane still has queued jobs.
        plan = FaultPlan.single(
            SERVICE_LANE_STALL, kind="stall", seconds=0.5, match="cheap"
        )
        with frontend(faults=plan, max_mappings=8) as fe:
            fe.admit(
                TenantSpec(
                    "cheap", system="bs_dm", quota=4, priority="best-effort"
                )
            )
            handles = [
                fe.submit("cheap", tiny_workload(), eval_seed=seed)
                for seed in range(2)
            ]
            fe.admit(
                TenantSpec(
                    "vip", system="bs_dm", quota=6, priority="standard"
                )
            )
            assert "cheap" not in fe.registry
            assert fe.health.preemptions == 1
            assert all(h.wait(10) for h in handles)
            fe.drain(timeout=30)
            assert fe.health.violations() == []

    def test_quarantine_rejection_carries_probation_end(self):
        from repro.faults.sites import SERVICE_LANE_CRASH

        plan = FaultPlan.single(SERVICE_LANE_CRASH, times=2, match="a")
        with frontend(
            faults=plan, max_strikes=2, quarantine_s=30.0
        ) as fe:
            fe.admit(TenantSpec("a", system="bs_dm", quota=2))
            fe.submit("a", tiny_workload())
            deadline = time.monotonic() + 10
            while fe.health.quarantines < 1:
                assert time.monotonic() < deadline, "never quarantined"
                time.sleep(0.005)
            with pytest.raises(TenantQuarantinedError) as info:
                fe.submit("a", tiny_workload())
            assert info.value.tenant == "a"
            assert info.value.until_s is not None
            assert fe.health.rejected == 1
