"""Tests for the streaming BFRV estimator and variable activity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.online.stream import StreamingBFRV, VariableActivity
from repro.profiling.bfrv import (
    DEGENERATE_CONSTANT,
    DEGENERATE_SHORT,
    bit_flip_rate_vector,
)


def stride_addresses(stride_lines: int, count: int = 512) -> np.ndarray:
    return np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)


class TestStreamingBFRV:
    def test_single_window_matches_batch(self):
        addresses = stride_addresses(4)
        estimator = StreamingBFRV(num_bits=20, decay=1.0)
        rates = estimator.update(addresses)
        np.testing.assert_array_equal(
            rates, bit_flip_rate_vector(addresses, 20)
        )

    def test_window_split_is_lossless(self):
        """Boundary pairs are counted: any split reproduces the batch."""
        addresses = stride_addresses(2, 600)
        estimator = StreamingBFRV(num_bits=16, decay=1.0)
        for start in range(0, 600, 97):  # deliberately ragged windows
            estimator.update(addresses[start : start + 97])
        np.testing.assert_array_equal(
            estimator.rates, bit_flip_rate_vector(addresses, 16)
        )

    def test_decay_forgets_old_phase(self):
        estimator = StreamingBFRV(num_bits=10, decay=0.3)
        estimator.update(stride_addresses(1, 256))
        early = estimator.rates.copy()
        for _ in range(6):
            estimator.update(stride_addresses(16, 256))
        late = estimator.rates
        target = bit_flip_rate_vector(stride_addresses(16, 256), 10)
        assert np.abs(late - target).mean() < np.abs(early - target).mean()
        assert np.abs(late - target).mean() < 0.02

    def test_short_window_flagged_not_raised(self):
        estimator = StreamingBFRV(num_bits=8)
        estimator.update(np.zeros(0, dtype=np.uint64))
        assert estimator.last_degenerate == DEGENERATE_SHORT
        assert estimator.degenerate_windows == 1
        assert (estimator.rates == 0).all()

    def test_constant_window_flagged_and_counted_in_pairs(self):
        estimator = StreamingBFRV(num_bits=8, decay=1.0)
        estimator.update(np.full(10, 0x40, dtype=np.uint64))
        assert estimator.last_degenerate == DEGENERATE_CONSTANT
        # Pairs still accumulate (batch-denominator parity).
        assert estimator.pairs_weight == 9.0
        assert (estimator.rates == 0).all()

    def test_constant_then_varying_matches_batch(self):
        constant = np.full(20, 0x1000, dtype=np.uint64)
        varying = stride_addresses(1, 100)
        estimator = StreamingBFRV(num_bits=12, decay=1.0)
        estimator.update(constant)
        estimator.update(varying)
        batch = bit_flip_rate_vector(np.concatenate([constant, varying]), 12)
        np.testing.assert_array_equal(estimator.rates, batch)

    def test_reset(self):
        estimator = StreamingBFRV(num_bits=8)
        estimator.update(stride_addresses(1, 64))
        estimator.reset()
        assert estimator.pairs_weight == 0.0
        assert (estimator.rates == 0).all()

    def test_invalid_params(self):
        with pytest.raises(ProfilingError):
            StreamingBFRV(num_bits=0)
        with pytest.raises(ProfilingError):
            StreamingBFRV(num_bits=4, decay=0.0)
        with pytest.raises(ProfilingError):
            StreamingBFRV(num_bits=4, decay=1.5)


@given(
    seed=st.integers(0, 2**31 - 1),
    splits=st.lists(st.integers(1, 64), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_streaming_decay_one_is_bitexact_with_batch(seed, splits):
    """The satellite property: decay=1.0 over concatenated windows
    equals the batch estimator on the full trace, bit for bit."""
    rng = np.random.default_rng(seed)
    total = sum(splits)
    addresses = rng.integers(0, 1 << 30, total, dtype=np.uint64)
    estimator = StreamingBFRV(num_bits=21, bit_offset=3, decay=1.0)
    start = 0
    for size in splits:
        estimator.update(addresses[start : start + size])
        start += size
    batch = bit_flip_rate_vector(addresses, 21, bit_offset=3)
    np.testing.assert_array_equal(estimator.rates, batch)


class TestVariableActivity:
    def test_majors_by_decayed_references(self):
        activity = VariableActivity(decay=1.0)
        addresses = np.arange(100, dtype=np.uint64) * np.uint64(64)
        activity.update(addresses, np.repeat([0, 1], 50))
        activity.update(addresses[:20], np.full(20, 0))
        majors = activity.majors(coverage=0.55)
        assert majors[0] == 0
        assert activity.references[0] == 70.0

    def test_footprint_counts_distinct_pages(self):
        activity = VariableActivity(page_bits=12, decay=1.0)
        addresses = np.array([0, 64, 4096, 8192], dtype=np.uint64)
        activity.update(addresses, np.zeros(4, dtype=np.int64))
        assert activity.footprint_pages[0] == 3.0

    def test_mismatched_tags_rejected(self):
        activity = VariableActivity()
        with pytest.raises(ProfilingError):
            activity.update(
                np.zeros(4, dtype=np.uint64), np.zeros(3, dtype=np.int64)
            )

    def test_to_dict_round_trips_json(self):
        import json

        activity = VariableActivity()
        activity.update(
            np.arange(16, dtype=np.uint64) * np.uint64(64),
            np.zeros(16, dtype=np.int64),
        )
        assert json.loads(json.dumps(activity.to_dict()))
