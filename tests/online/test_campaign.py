"""End-to-end tests for the adaptive-vs-static campaign."""

import json

import pytest

from repro.online.campaign import run_adaptive_campaign


@pytest.fixture(scope="module")
def quick_result():
    return run_adaptive_campaign(seed=0, quick=True)


class TestAcceptance:
    def test_adaptive_beats_best_static(self, quick_result):
        """The headline criterion: >= 1.10x over the best static
        mapping with all migration overhead charged."""
        assert quick_result.speedup >= 1.10

    def test_multiple_remaps_committed(self, quick_result):
        assert quick_result.remaps >= 2
        assert quick_result.failed_remaps == 0

    def test_stationary_control_never_remaps(self, quick_result):
        assert quick_result.stationary_remaps == 0

    def test_overhead_is_charged(self, quick_result):
        assert quick_result.overhead_ns > 0
        assert (
            quick_result.adaptive_total_ns
            == quick_result.adaptive_service_ns + quick_result.overhead_ns
        )

    def test_static_field_includes_adopted_mappings(self, quick_result):
        assert "identity" in quick_result.static_ns
        assert "offline-bfrv" in quick_result.static_ns
        adopted = [
            label
            for label in quick_result.static_ns
            if label.startswith("adaptive-perm-")
        ]
        assert len(adopted) >= 1
        assert quick_result.best_static in quick_result.static_ns

    def test_journal_records_every_remap(self, quick_result):
        remaps = [
            entry
            for entry in quick_result.journal
            if entry["kind"] == "remap"
        ]
        assert len(remaps) == quick_result.remaps
        for entry in remaps:
            assert entry["lines_copied"] > 0
            assert entry["decision"]["reason"] == "approved"

    def test_result_serialises_to_json(self, quick_result):
        data = json.loads(json.dumps(quick_result.to_dict()))
        assert data["speedup"] == pytest.approx(quick_result.speedup)
        assert data["best_static"] == quick_result.best_static


class TestDeterminism:
    def test_fixed_seed_is_bit_reproducible(self, quick_result):
        again = run_adaptive_campaign(seed=0, quick=True)
        assert again.fingerprint() == quick_result.fingerprint()
