"""Tests for the remap cost/benefit policy."""

import numpy as np
import pytest

from repro.core.bitshuffle import select_window_permutation
from repro.core.chunks import ChunkGeometry
from repro.hbm.config import hbm2_config
from repro.online.policy import AMU_REPROGRAM_NS, CMT_WRITE_NS, RemapPolicy
from repro.profiling.bfrv import window_flip_rates


@pytest.fixture(scope="module")
def hbm():
    return hbm2_config()


@pytest.fixture(scope="module")
def geometry(hbm):
    return ChunkGeometry(total_bytes=hbm.total_bytes)


@pytest.fixture()
def policy(hbm, geometry):
    return RemapPolicy(hbm, geometry)


def identity(geometry):
    low, high = geometry.window_slice()
    return np.arange(high - low, dtype=np.int64)


def collapsing_trace(geometry, count=2048):
    """Addresses whose low window bits never flip: under the identity
    mapping every access lands on one channel."""
    low, _ = geometry.window_slice()
    stride = 1 << (low + 10)  # only window positions >= 10 vary
    return np.arange(count, dtype=np.uint64) * np.uint64(stride)


class TestVerdicts:
    def test_degenerate_profile_declined(self, policy, geometry):
        perm = identity(geometry)
        decision = policy.evaluate(
            np.zeros(4, dtype=np.uint64),
            perm,
            perm,
            windows_since_remap=100,
            live_lines=0,
            chunks=1,
            degenerate=True,
        )
        assert not decision.remap
        assert decision.reason == "degenerate-profile"

    def test_same_mapping_declined(self, policy, geometry):
        perm = identity(geometry)
        decision = policy.evaluate(
            collapsing_trace(geometry),
            perm,
            perm.copy(),
            windows_since_remap=100,
            live_lines=1024,
            chunks=1,
        )
        assert decision.reason == "same-mapping"

    def test_cooldown_blocks_back_to_back_remaps(self, policy, geometry):
        perm = identity(geometry)
        candidate = perm[::-1].copy()
        decision = policy.evaluate(
            collapsing_trace(geometry),
            candidate,
            perm,
            windows_since_remap=policy.cooldown_windows - 1,
            live_lines=1024,
            chunks=1,
        )
        assert decision.reason == "cooldown"
        assert not decision.remap

    def test_chunk_budget_exhaustion_declines(self, policy, geometry):
        perm = identity(geometry)
        decision = policy.evaluate(
            collapsing_trace(geometry),
            perm[::-1].copy(),
            perm,
            windows_since_remap=100,
            live_lines=1024,
            chunks=2,
            chunk_remap_counts={7: policy.max_remaps_per_chunk},
        )
        assert decision.reason == "chunk-budget"
        assert decision.details["chunks"] == [7]

    def test_no_gain_declined(self, hbm, policy, geometry):
        """A balanced trace gains nothing from remapping; the migration
        cost of a large live group seals the decline."""
        rng = np.random.default_rng(1)
        pa = rng.integers(0, 1 << 28, 2048, dtype=np.uint64) & ~np.uint64(63)
        decision = policy.evaluate(
            pa,
            identity(geometry)[::-1].copy(),
            identity(geometry),
            windows_since_remap=100,
            live_lines=1 << 20,
            chunks=4,
        )
        assert decision.reason == "insufficient-gain"
        assert not decision.remap
        assert decision.migration_cost_ns > 0

    def test_channel_collapse_approved(self, hbm, policy, geometry):
        """The motivating case: the current mapping serialises every
        access onto one channel and the candidate spreads them."""
        pa = collapsing_trace(geometry)
        low, high = geometry.window_slice()
        candidate = select_window_permutation(
            window_flip_rates(pa, (low, high)), hbm.layout(), geometry
        )
        decision = policy.evaluate(
            pa,
            candidate,
            identity(geometry),
            windows_since_remap=100,
            live_lines=32768,
            chunks=1,
        )
        assert decision.remap
        assert decision.reason == "approved"
        assert decision.gain_ns_per_window > 0
        assert (
            decision.projected_gain_ns
            > policy.benefit_margin * decision.migration_cost_ns
        )


class TestPricing:
    def test_migration_estimate_components(self, hbm, policy):
        lines, chunks = 1000, 3
        expected = (
            2.0 * lines * hbm.effective_t_burst_ns / hbm.num_channels
            + chunks * CMT_WRITE_NS
            + AMU_REPROGRAM_NS
        )
        assert policy.migration_estimate_ns(lines, chunks) == pytest.approx(
            expected
        )

    def test_empty_group_costs_only_reprogram(self, policy):
        assert policy.migration_estimate_ns(0, 1) == pytest.approx(
            CMT_WRITE_NS + AMU_REPROGRAM_NS
        )

    def test_probe_caps_replayed_window(self, policy, geometry):
        long_pa = collapsing_trace(geometry, count=policy.probe_accesses * 4)
        capped = policy.probe_window_ns(long_pa, identity(geometry))
        tail = policy.probe_window_ns(
            long_pa[-policy.probe_accesses :], identity(geometry)
        )
        assert capped == pytest.approx(tail)

    def test_decision_to_dict_is_json_safe(self, policy, geometry):
        import json

        perm = identity(geometry)
        decision = policy.evaluate(
            collapsing_trace(geometry),
            perm,
            perm,
            windows_since_remap=100,
            live_lines=0,
            chunks=1,
        )
        assert json.loads(json.dumps(decision.to_dict()))
