"""Tests for the adaptive controller: hysteresis, remap, rollback."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry
from repro.core.sdam import SDAMController
from repro.errors import DeviceFaultError, ProfilingError
from repro.faults.sites import DEVICE_HBM_BANK
from repro.hbm.config import hbm2_config
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.online.controller import AdaptiveController
from repro.workloads.synthetic import PhaseShiftWorkload

WINDOW = 2048


@pytest.fixture(scope="module")
def hbm():
    return hbm2_config()


@pytest.fixture(scope="module")
def geometry(hbm):
    return ChunkGeometry(total_bytes=hbm.total_bytes)


def build_stack(workload, geometry, seed=0):
    """Boot an SDAM kernel, allocate the workload, return its PA trace."""
    sdam = SDAMController(geometry)
    kernel = Kernel(geometry, sdam=sdam)
    space = kernel.spawn()
    allocator = MappingAwareAllocator(kernel, space)
    base = {
        spec.name: allocator.malloc(spec.size_bytes, mapping_id=0, tag=spec.name)
        for spec in workload.variables()
    }
    trace = workload.trace(base, input_seed=seed)[0]
    return kernel, space.translate_trace(trace.va)


def feed(controller, pa):
    entries = []
    for start in range(0, pa.size, WINDOW):
        entry = controller.observe(pa[start : start + WINDOW])
        if entry is not None:
            entries.append(entry)
    return entries


def test_requires_sdam_kernel(geometry):
    with pytest.raises(ProfilingError):
        AdaptiveController(Kernel(geometry))


def test_stationary_trace_never_remaps(hbm, geometry):
    """The hysteresis guarantee: a single-phase trace triggers nothing
    at all — no remaps, no declines, no journal entries."""
    workload = PhaseShiftWorkload(
        buffer_bytes=2 * 1024 * 1024,
        accesses_per_phase=WINDOW * 16,
        phases=("stream",),
    )
    kernel, pa = build_stack(workload, geometry)
    controller = AdaptiveController(kernel, mapping_id=0, hbm=hbm)
    feed(controller, pa)
    assert controller.remap_count == 0
    assert controller.traffic.failed_remaps == 0
    assert controller.journal == []
    assert controller.mapping_id == 0


def test_phase_shift_commits_live_remap(hbm, geometry):
    workload = PhaseShiftWorkload(
        buffer_bytes=2 * 1024 * 1024,
        accesses_per_phase=WINDOW * 12,
        phases=("stream", "tiled"),
    )
    kernel, pa = build_stack(workload, geometry)
    controller = AdaptiveController(kernel, mapping_id=0, hbm=hbm)
    feed(controller, pa)
    remaps = [e for e in controller.journal if e["kind"] == "remap"]
    assert len(remaps) >= 1
    assert controller.traffic.failed_remaps == 0
    # The controller followed the group to its new mapping id ...
    assert controller.mapping_id != 0
    assert remaps[0]["old_mapping"] == 0
    assert remaps[0]["new_mapping"] == controller.mapping_id
    # ... the CMT agrees for every chunk of the group ...
    index = kernel.hardware_index_of(controller.mapping_id)
    for chunk in kernel.physical.group(controller.mapping_id).chunks:
        assert kernel.sdam.cmt.mapping_index_of(chunk.number) == index
    # ... and the data movement was accounted.
    assert remaps[0]["lines_copied"] > 0
    assert controller.traffic.lines_copied > 0
    assert controller.traffic.bytes_moved > 0
    assert controller.traffic.amu_reprograms >= 1
    assert controller.traffic.overhead_ns > 0


def test_cooldown_rate_limits_remaps(hbm, geometry):
    """Immediately after a remap, further events only decline with the
    cooldown reason — the reference is deliberately not re-anchored."""
    workload = PhaseShiftWorkload(
        buffer_bytes=2 * 1024 * 1024,
        accesses_per_phase=WINDOW * 12,
        phases=("stream", "tiled"),
    )
    kernel, pa = build_stack(workload, geometry)
    controller = AdaptiveController(kernel, mapping_id=0, hbm=hbm)
    feed(controller, pa)
    remap_windows = [
        e["window"] for e in controller.journal if e["kind"] == "remap"
    ]
    cooldown = controller.policy.cooldown_windows
    for entry in controller.journal:
        if entry["kind"] != "remap":
            continue
        for other in controller.journal:
            if (
                other["kind"] == "remap"
                and other["window"] > entry["window"]
            ):
                assert other["window"] - entry["window"] >= cooldown
    assert remap_windows  # the scenario did remap at least once


def test_rollback_on_midmigration_fault(hbm, geometry):
    """A device fault on the second chunk's copy must roll the first
    chunk back: the group is never left split across mappings."""
    workload = PhaseShiftWorkload(
        buffer_bytes=4 * 1024 * 1024,  # two chunks in the group
        accesses_per_phase=WINDOW * 12,
        phases=("stream", "tiled"),
    )
    kernel, pa = build_stack(workload, geometry)

    copies = {"count": 0}

    def faulty_copy(pa_lines, reads, writes):
        copies["count"] += 1
        if copies["count"] == 2:
            raise DeviceFaultError(
                f"injected {DEVICE_HBM_BANK} fault mid-copy"
            )

    controller = AdaptiveController(
        kernel, mapping_id=0, hbm=hbm, on_copy=faulty_copy
    )
    for start in range(0, pa.size, WINDOW):
        entry = controller.observe(pa[start : start + WINDOW])
        if entry is not None and entry["kind"] == "remap-failed":
            break  # inspect the rolled-back state before any retry

    failures = [
        e for e in controller.journal if e["kind"] == "remap-failed"
    ]
    assert len(failures) >= 1
    first = failures[0]
    assert DEVICE_HBM_BANK in first["fault"]
    assert first["chunks_attempted"] == 2
    assert first["chunks_rolled_back"] == 1
    # The mapping did not move and the group is whole under it.
    assert controller.mapping_id == 0
    group = kernel.physical.group(0)
    assert len(group.chunks) == 2
    for chunk in group.chunks:
        assert kernel.sdam.cmt.mapping_index_of(chunk.number) == 0
    # Accounting: a failed remap is not a remap, but its rollback
    # traffic is real.
    assert controller.traffic.failed_remaps == len(failures)
    assert controller.traffic.rollback_migrations >= 1
    assert controller.traffic.bytes_moved > 0


def test_programming_error_escapes_remap_handler(hbm, geometry):
    """A TypeError in the copy callback is a bug, not a device fault:
    it must propagate out of ``observe`` rather than be journalled as
    a tidy ``remap-failed`` entry."""
    workload = PhaseShiftWorkload(
        buffer_bytes=2 * 1024 * 1024,
        accesses_per_phase=WINDOW * 12,
        phases=("stream", "tiled"),
    )
    kernel, pa = build_stack(workload, geometry)

    def buggy_copy(pa_lines, reads, writes):
        return None + 1  # deliberate TypeError

    controller = AdaptiveController(
        kernel, mapping_id=0, hbm=hbm, on_copy=buggy_copy
    )
    with pytest.raises(TypeError):
        feed(controller, pa)
    assert controller.traffic.failed_remaps == 0
    assert not [
        e for e in controller.journal if e["kind"] == "remap-failed"
    ]


def test_recovers_after_transient_fault(hbm, geometry):
    """Once the injected fault clears, the controller retries on the
    next phase event and commits."""
    workload = PhaseShiftWorkload(
        buffer_bytes=2 * 1024 * 1024,
        accesses_per_phase=WINDOW * 12,
        phases=("stream", "tiled"),
    )
    kernel, pa = build_stack(workload, geometry)

    copies = {"count": 0}

    def transient(pa_lines, reads, writes):
        copies["count"] += 1
        if copies["count"] == 1:
            raise DeviceFaultError(
                f"injected {DEVICE_HBM_BANK} fault mid-copy"
            )

    controller = AdaptiveController(
        kernel, mapping_id=0, hbm=hbm, on_copy=transient
    )
    feed(controller, pa)
    assert controller.traffic.failed_remaps >= 1
    assert controller.traffic.remaps >= 1
    assert controller.mapping_id != 0


def test_to_dict_and_summary(hbm, geometry):
    workload = PhaseShiftWorkload(
        buffer_bytes=2 * 1024 * 1024,
        accesses_per_phase=WINDOW * 4,
        phases=("stream",),
    )
    kernel, pa = build_stack(workload, geometry)
    controller = AdaptiveController(kernel, mapping_id=0, hbm=hbm)
    feed(controller, pa)
    import json

    snapshot = json.loads(json.dumps(controller.to_dict()))
    assert snapshot["remaps"] == 0
    assert "windows" in controller.summary()
