"""Tests for BFRV distances and the phase-change detector."""

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.online.phase import PhaseDetector, bfrv_distance


class TestDistance:
    def test_l1_is_mean_abs_difference(self):
        a = np.array([0.0, 0.5, 1.0])
        b = np.array([0.5, 0.5, 0.0])
        assert bfrv_distance(a, b) == pytest.approx(0.5)

    def test_identical_vectors_at_zero(self):
        a = np.linspace(0, 1, 8)
        assert bfrv_distance(a, a, "l1") == 0.0
        assert bfrv_distance(a, a, "cosine") == pytest.approx(0.0)

    def test_cosine_zero_vector_conventions(self):
        zero = np.zeros(4)
        hot = np.array([1.0, 0.0, 0.0, 0.0])
        assert bfrv_distance(zero, zero, "cosine") == 0.0
        assert bfrv_distance(zero, hot, "cosine") == 1.0
        assert bfrv_distance(hot, zero, "cosine") == 1.0

    def test_cosine_orthogonal_at_one(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert bfrv_distance(a, b, "cosine") == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProfilingError):
            bfrv_distance(np.zeros(3), np.zeros(4))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ProfilingError):
            bfrv_distance(np.zeros(3), np.zeros(3), "l2")


class TestPhaseDetector:
    def test_first_observation_becomes_reference(self):
        detector = PhaseDetector(threshold=0.05, persistence=1)
        rates = np.array([0.9, 0.1, 0.0])
        assert detector.observe(rates) is None
        np.testing.assert_array_equal(detector.reference, rates)

    def test_stationary_never_fires(self):
        detector = PhaseDetector(threshold=0.05, persistence=2)
        rng = np.random.default_rng(0)
        base = np.array([0.8, 0.4, 0.1, 0.0])
        for _ in range(50):
            noisy = base + rng.normal(0, 0.005, base.size)
            assert detector.observe(noisy) is None
        assert detector.events == []

    def test_persistence_gates_single_window_noise(self):
        detector = PhaseDetector(threshold=0.1, persistence=2)
        base = np.array([0.5, 0.5])
        far = np.array([0.0, 1.0])
        detector.observe(base)  # reference
        assert detector.observe(far) is None  # streak 1 of 2
        assert detector.observe(base) is None  # dip resets the streak
        assert detector.observe(far) is None  # streak 1 again
        event = detector.observe(far)  # streak 2 -> fire
        assert event is not None
        assert event.streak == 2
        assert event.distance == pytest.approx(0.5)
        assert detector.events == [event]

    def test_keeps_firing_until_reanchored(self):
        detector = PhaseDetector(threshold=0.1, persistence=2)
        base = np.array([0.5, 0.5])
        far = np.array([0.0, 1.0])
        detector.observe(base)
        fired = [detector.observe(far) for _ in range(6)]
        assert sum(event is not None for event in fired) == 3

    def test_reanchor_silences_the_new_phase(self):
        detector = PhaseDetector(threshold=0.1, persistence=1)
        base = np.array([0.5, 0.5])
        far = np.array([0.0, 1.0])
        detector.observe(base)
        assert detector.observe(far) is not None
        detector.set_reference(far)
        for _ in range(10):
            assert detector.observe(far) is None

    def test_invalid_params(self):
        with pytest.raises(ProfilingError):
            PhaseDetector(threshold=0.0)
        with pytest.raises(ProfilingError):
            PhaseDetector(persistence=0)
        with pytest.raises(ProfilingError):
            PhaseDetector(metric="manhattan")
