"""Crash-safe adaptive-campaign checkpoints: kill, resume, same answer."""

import json

import pytest

from repro.errors import CampaignInterrupted, ConfigError
from repro.online.campaign import run_adaptive_campaign

SEED = 5


def _fingerprint(result) -> str:
    return json.dumps(result.fingerprint(), sort_keys=True, default=str)


class TestKillAndResume:
    def test_resumed_campaign_is_bit_identical(self, tmp_path):
        baseline = run_adaptive_campaign(seed=SEED, quick=True)
        path = tmp_path / "adapt.ckpt"
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_adaptive_campaign(
                seed=SEED,
                quick=True,
                checkpoint_path=str(path),
                checkpoint_every=5,
                stop_after_window=10,
            )
        assert excinfo.value.checkpoint_path == str(path)
        assert path.exists()
        resumed = run_adaptive_campaign(
            seed=SEED,
            quick=True,
            checkpoint_path=str(path),
            resume=True,
        )
        assert resumed.resumed
        assert _fingerprint(resumed) == _fingerprint(baseline)

    def test_resumed_flag_is_not_part_of_the_fingerprint(self, tmp_path):
        path = tmp_path / "adapt.ckpt"
        with pytest.raises(CampaignInterrupted):
            run_adaptive_campaign(
                seed=SEED,
                quick=True,
                checkpoint_path=str(path),
                stop_after_window=4,
            )
        resumed = run_adaptive_campaign(
            seed=SEED, quick=True, checkpoint_path=str(path), resume=True
        )
        assert resumed.to_dict()["resumed"] is True
        assert resumed.fingerprint()["resumed"] is False


class TestCheckpointValidation:
    def test_mismatched_parameters_are_rejected(self, tmp_path):
        path = tmp_path / "adapt.ckpt"
        with pytest.raises(CampaignInterrupted):
            run_adaptive_campaign(
                seed=SEED,
                quick=True,
                checkpoint_path=str(path),
                stop_after_window=4,
            )
        with pytest.raises(ConfigError, match="different parameters"):
            run_adaptive_campaign(
                seed=SEED + 1,
                quick=True,
                checkpoint_path=str(path),
                resume=True,
            )

    def test_wrong_campaign_type_is_rejected(self, tmp_path):
        from repro.errors import CampaignInterrupted as Stop
        from repro.ras.campaign import run_campaign

        path = tmp_path / "ras.ckpt"
        with pytest.raises(Stop):
            run_campaign(
                seed=3,
                kinds=("row",),
                quick=True,
                checkpoint_path=str(path),
                stop_after_batch=1,
            )
        with pytest.raises(ConfigError, match="campaign"):
            run_adaptive_campaign(
                seed=SEED,
                quick=True,
                checkpoint_path=str(path),
                resume=True,
            )

    def test_stop_after_requires_a_checkpoint_path(self):
        with pytest.raises(ConfigError):
            run_adaptive_campaign(seed=SEED, quick=True, stop_after_window=4)
