"""Merge laws for the mutable bookkeeping types, as properties.

:class:`~repro.hbm.stats.RunStats` already has example-based merge-law
tests (``tests/hbm/test_vectormodel.py::TestMergeLaws``); the service
layer now also reduces :class:`~repro.hbm.stats.BackendHealth` and
:class:`~repro.hbm.stats.RemapTraffic` across per-tenant runs, so their
laws get the hypothesis treatment:

* identity — merging with a fresh/empty instance changes nothing;
* associativity — any reduction order gives the same journal;
* counter conservation — merged counters are exactly the sums.

``BackendHealth.merge`` is deliberately *not* commutative (it models
*sequential* runs: ``demoted_to``/``guard`` take the latest value and
``degradations`` keep arrival order), so no commutativity law is
claimed for it.  ``RemapTraffic`` is all-adding and therefore also
commutative.

Nanosecond fields are drawn as integer-valued floats: the laws under
test are about the merge structure, not about float addition being
associative (it is not).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hbm.stats import BackendHealth, RemapTraffic

counters = st.integers(min_value=0, max_value=10_000)
whole_ns = st.integers(min_value=0, max_value=10**9).map(float)

degradation_entries = st.lists(
    st.fixed_dictionaries(
        {
            "event": st.sampled_from(
                ["shard-retry", "shard-timeout", "serial-shard"]
            ),
            "reason": st.sampled_from(["injected", "timeout", "crash"]),
        }
    ),
    max_size=4,
)

backend_healths = st.builds(
    BackendHealth,
    backend=st.just("vector"),
    workers=st.integers(min_value=0, max_value=16),
    shards=counters,
    shard_retries=counters,
    shard_timeouts=counters,
    stats_rejected=counters,
    serial_shards=counters,
    pool_degraded=st.booleans(),
    demoted_to=st.none() | st.sampled_from(["fast", "serial"]),
    degradations=degradation_entries,
    guard=st.none()
    | st.fixed_dictionaries({"diverged": st.booleans()}),
)

remap_traffics = st.builds(
    RemapTraffic,
    remaps=counters,
    failed_remaps=counters,
    rollback_migrations=counters,
    chunks_migrated=counters,
    lines_copied=counters,
    bytes_moved=counters,
    migration_ns=whole_ns,
    cmt_writes=counters,
    amu_reprograms=counters,
    reprogram_ns=whole_ns,
)

_HEALTH_COUNTERS = (
    "shards",
    "shard_retries",
    "shard_timeouts",
    "stats_rejected",
    "serial_shards",
)
_TRAFFIC_COUNTERS = (
    "remaps",
    "failed_remaps",
    "rollback_migrations",
    "chunks_migrated",
    "lines_copied",
    "bytes_moved",
    "migration_ns",
    "cmt_writes",
    "amu_reprograms",
    "reprogram_ns",
)


class TestBackendHealthMergeLaws:
    @settings(max_examples=60, deadline=None)
    @given(a=backend_healths)
    def test_identity(self, a):
        empty = BackendHealth(backend=a.backend)
        assert a.merge(empty).to_dict() == a.to_dict()
        assert empty.merge(a).to_dict() == a.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(a=backend_healths, b=backend_healths, c=backend_healths)
    def test_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(a=backend_healths, b=backend_healths)
    def test_counter_conservation(self, a, b):
        merged = a.merge(b)
        for name in _HEALTH_COUNTERS:
            assert getattr(merged, name) == getattr(a, name) + getattr(
                b, name
            )
        assert merged.workers == max(a.workers, b.workers)
        assert merged.pool_degraded == (a.pool_degraded or b.pool_degraded)
        assert merged.degradations == a.degradations + b.degradations

    @settings(max_examples=60, deadline=None)
    @given(a=backend_healths, b=backend_healths)
    def test_merge_leaves_operands_untouched(self, a, b):
        before_a, before_b = a.to_dict(), b.to_dict()
        a.merge(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b

    @settings(max_examples=60, deadline=None)
    @given(a=backend_healths, b=backend_healths)
    def test_latest_run_wins_sequential_fields(self, a, b):
        merged = a.merge(b)
        assert merged.demoted_to == (b.demoted_to or a.demoted_to)
        assert merged.guard == (b.guard if b.guard is not None else a.guard)


class TestRemapTrafficMergeLaws:
    @settings(max_examples=60, deadline=None)
    @given(a=remap_traffics)
    def test_identity(self, a):
        assert a.merge(RemapTraffic()).to_dict() == a.to_dict()
        assert RemapTraffic().merge(a).to_dict() == a.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(a=remap_traffics, b=remap_traffics, c=remap_traffics)
    def test_associative(self, a, b, c):
        assert (a + b + c).to_dict() == a.merge(b.merge(c)).to_dict()

    @settings(max_examples=60, deadline=None)
    @given(a=remap_traffics, b=remap_traffics)
    def test_commutative(self, a, b):
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    @settings(max_examples=60, deadline=None)
    @given(a=remap_traffics, b=remap_traffics)
    def test_counter_conservation(self, a, b):
        merged = a.merge(b)
        for name in _TRAFFIC_COUNTERS:
            assert getattr(merged, name) == getattr(a, name) + getattr(
                b, name
            )
        assert merged.overhead_ns == merged.migration_ns + merged.reprogram_ns
