"""Tests for the pluggable memory-backend registry and protocol."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hbm import (
    MemoryBackend,
    available_backends,
    create_backend,
    decode_trace,
    hbm2_config,
    register_backend,
)
from repro.hbm import backend as backend_module
from repro.hbm.device import HBMDevice
from repro.hbm.fastmodel import WindowModel

CONFIG = hbm2_config()


def _trace(n: int = 4096, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = CONFIG.total_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert "fast" in available_backends()
        assert "event" in available_backends()
        assert "tiered" in available_backends()

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend("fast", WindowModel)
        # The registry entry is untouched by the failed attempt.
        backend = create_backend("fast", CONFIG, max_inflight=8)
        assert isinstance(backend, WindowModel)

    def test_replace_opt_in_overwrites(self):
        def stub_factory(config, **kwargs):
            return WindowModel(config, **kwargs)

        register_backend("replace-test", stub_factory)
        try:
            with pytest.raises(ConfigError, match="already registered"):
                register_backend("replace-test", WindowModel)
            register_backend("replace-test", WindowModel, replace=True)
            backend = create_backend("replace-test", CONFIG, max_inflight=8)
            assert isinstance(backend, WindowModel)
        finally:
            backend_module._REGISTRY.pop("replace-test", None)

    def test_register_builtins_idempotent(self):
        before = available_backends()
        backend_module._register_builtins()
        backend_module._register_builtins()
        assert available_backends() == before

    def test_create_fast(self):
        backend = create_backend("fast", CONFIG, max_inflight=64)
        assert isinstance(backend, WindowModel)
        assert isinstance(backend, MemoryBackend)

    def test_create_event(self):
        backend = create_backend("event", CONFIG, max_inflight=64)
        assert isinstance(backend, HBMDevice)
        assert isinstance(backend, MemoryBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown memory backend"):
            create_backend("no-such-model", CONFIG)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            register_backend("", WindowModel)

    def test_custom_backend_registration(self):
        class CountingBackend:
            """Statistics-only stub: counts requests, no timing."""

            def __init__(self, config, **kwargs):
                self.config = config
                self.inner = WindowModel(config, **kwargs)

            def simulate(self, ha):
                return self.simulate_decoded(decode_trace(ha, self.config))

            def simulate_decoded(self, decoded):
                self.seen = len(decoded)
                return self.inner.simulate_decoded(decoded)

        register_backend("counting-test", CountingBackend)
        try:
            assert "counting-test" in available_backends()
            backend = create_backend("counting-test", CONFIG, max_inflight=8)
            assert isinstance(backend, MemoryBackend)
            stats = backend.simulate(_trace(512))
            assert backend.seen == 512
            assert stats.requests == 512
        finally:
            backend_module._REGISTRY.pop("counting-test", None)
        assert "counting-test" not in available_backends()


class TestProtocolAgreement:
    @pytest.mark.parametrize("name", ["fast", "event"])
    def test_simulate_equals_simulate_decoded(self, name):
        ha = _trace(2048, seed=5)
        via_ha = create_backend(name, CONFIG, max_inflight=32).simulate(ha)
        via_decoded = create_backend(
            name, CONFIG, max_inflight=32
        ).simulate_decoded(decode_trace(ha, CONFIG))
        assert via_ha.requests == via_decoded.requests
        assert via_ha.bytes_moved == via_decoded.bytes_moved
        assert via_ha.makespan_ns == via_decoded.makespan_ns
        assert via_ha.row_hits == via_decoded.row_hits
        assert via_ha.row_misses == via_decoded.row_misses
        np.testing.assert_array_equal(
            via_ha.per_channel_requests, via_decoded.per_channel_requests
        )


class TestMachineSelection:
    def test_machine_rejects_unknown_backend(self):
        from repro.system import system_by_key
        from repro.system.machine import Machine

        with pytest.raises(ConfigError, match="unknown memory model"):
            Machine(system_by_key("bs_dm"), memory_model="no-such-model")

    def test_machine_accepts_registered_backends(self):
        from repro.system import system_by_key
        from repro.system.machine import Machine

        for name in ("fast", "vector", "event"):
            machine = Machine(system_by_key("bs_dm"), backend=name)
            assert machine.backend == name
            assert machine.memory_model == name  # compat alias


class TestDeprecationShims:
    """The renamed surfaces keep working, but say so exactly once.

    The suite-wide autouse fixture in ``tests/conftest.py`` resets the
    once-per-process registry between tests.
    """

    def test_memory_model_alias_warns_once(self):
        import warnings

        from repro.system import system_by_key
        from repro.system.machine import Machine

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            machine = Machine(system_by_key("bs_dm"), memory_model="event")
            Machine(system_by_key("bs_dm"), memory_model="event")
        assert machine.backend == "event"
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "backend" in str(deprecations[0].message)

    def test_conflicting_backend_and_alias_rejected(self):
        import warnings

        from repro.system import system_by_key
        from repro.system.machine import Machine

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ConfigError, match="not conflicting"):
                Machine(
                    system_by_key("bs_dm"),
                    backend="fast",
                    memory_model="event",
                )

    def test_matching_backend_and_alias_accepted(self):
        import warnings

        from repro.system import system_by_key
        from repro.system.machine import Machine

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            machine = Machine(
                system_by_key("bs_dm"), backend="fast", memory_model="fast"
            )
        assert machine.backend == "fast"

    def test_backend_hints_warns(self):
        import warnings

        from repro.cpu.cpu import CPUModel

        cpu = CPUModel()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            hints = cpu.backend_hints()
            cpu.backend_hints()
        assert hints == {"max_inflight": cpu.max_inflight}
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_stage_params_accept_alias(self):
        import warnings

        from repro.system import system_by_key
        from repro.system.stages import MachineParams

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            params = MachineParams.from_kwargs(
                system_by_key("bs_dm"), memory_model="event"
            )
        assert params.backend == "event"
