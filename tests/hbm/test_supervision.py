"""Tests for the vector tier's shard supervisor.

The contract under test: every rung of the degradation ladder — pool
submit, per-shard retry, stall/timeout pool abandonment, shard-granular
serial fallback — produces **bit-identical** stats to an undisturbed
run, and every rung taken is recorded in ``last_health``.  The
``backend.shard.*`` fault sites drive each path deterministically.
"""

import numpy as np
import pytest

from repro.errors import BackendExecutionError
from repro.faults import FaultPlan
from repro.faults.sites import (
    BACKEND_SHARD_CRASH,
    BACKEND_SHARD_STALL,
    BACKEND_SHARD_STATS,
)
from repro.hbm import hbm2_config
from repro.hbm.decode import decode_trace
from repro.hbm.vectormodel import VectorModel
from repro.system.runner import RetryPolicy

CONFIG = hbm2_config()


def _trace(n: int = 4096, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = CONFIG.total_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


def _fast_retry() -> RetryPolicy:
    return RetryPolicy(backoff_seconds=0.001)


def _assert_identical(a, b):
    assert a.requests == b.requests
    assert a.bytes_moved == b.bytes_moved
    assert a.makespan_ns == b.makespan_ns
    assert a.row_hits == b.row_hits
    assert a.row_misses == b.row_misses
    np.testing.assert_array_equal(
        a.per_channel_requests, b.per_channel_requests
    )


@pytest.fixture(scope="module")
def baseline():
    """The undisturbed serial answer every recovery path must match."""
    return VectorModel(CONFIG).simulate(_trace())


def _events(model: VectorModel) -> list[str]:
    return [d["event"] for d in model.last_health.degradations]


class TestHealthySharding:
    def test_sharded_matches_serial_and_reports_health(self, baseline):
        model = VectorModel(CONFIG, workers=2, retry=_fast_retry())
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        health = model.last_health
        assert health.workers == 2
        assert health.shards == 2
        assert health.sharded
        assert health.ok
        assert health.degradations == []

    def test_serial_run_reports_unsharded_health(self, baseline):
        model = VectorModel(CONFIG)
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        assert model.last_health is not None
        assert not model.last_health.sharded


class TestInjectedShardFaults:
    def test_crash_is_retried_and_converges(self, baseline):
        model = VectorModel(
            CONFIG,
            workers=2,
            retry=_fast_retry(),
            faults=FaultPlan.single(BACKEND_SHARD_CRASH, match="shard0"),
        )
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        health = model.last_health
        assert health.shard_retries >= 1
        assert "shard-retry" in _events(model)
        assert not health.ok  # degradation is reported, never silent

    def test_stall_abandons_pool_and_falls_back_serially(self, baseline):
        model = VectorModel(
            CONFIG,
            workers=2,
            retry=_fast_retry(),
            faults=FaultPlan.single(
                BACKEND_SHARD_STALL, kind="stall", match="shard1"
            ),
        )
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        events = _events(model)
        assert "shard-timeout" in events
        assert "pool-degraded" in events
        assert "serial-shard" in events
        assert not model.last_health.sharded

    def test_corrupted_stats_are_rejected_then_recomputed(self, baseline):
        model = VectorModel(
            CONFIG,
            workers=2,
            retry=_fast_retry(),
            faults=FaultPlan.single(BACKEND_SHARD_STATS, match="shard0"),
        )
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        health = model.last_health
        assert health.stats_rejected >= 1
        assert "shard-stats-rejected" in _events(model)
        assert "shard-retry" in _events(model)

    def test_unrecoverable_shard_raises_with_health(self):
        # times=2: the crash fires once in the pool and once more in the
        # serial fallback; with retries disabled the ladder is exhausted.
        model = VectorModel(
            CONFIG,
            workers=2,
            retry=RetryPolicy.none(),
            faults=FaultPlan.single(
                BACKEND_SHARD_CRASH, match="shard0", times=2
            ),
        )
        with pytest.raises(BackendExecutionError) as excinfo:
            model.simulate(_trace())
        health = excinfo.value.health
        assert health is not None
        assert "serial-shard" in [d["event"] for d in health.degradations]

    def test_crash_without_retry_still_converges_serially(self, baseline):
        # One firing, no retry budget: the pool gives up on the shard
        # and the serial rung completes it.
        model = VectorModel(
            CONFIG,
            workers=2,
            retry=RetryPolicy.none(),
            faults=FaultPlan.single(BACKEND_SHARD_CRASH, match="shard0"),
        )
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        assert "serial-shard" in _events(model)


class TestPoolCreationNarrowing:
    """Only environmental pool failures degrade; real bugs propagate."""

    class _Unavailable:
        def __init__(self, *args, **kwargs):
            raise OSError("no semaphores here")

    class _Buggy:
        def __init__(self, *args, **kwargs):
            raise ValueError("max_workers must be positive")

    def test_environmental_failure_degrades_with_record(
        self, baseline, monkeypatch
    ):
        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", self._Unavailable
        )
        model = VectorModel(CONFIG, workers=2, retry=_fast_retry())
        stats = model.simulate(_trace())
        _assert_identical(stats, baseline)
        health = model.last_health
        assert health.pool_degraded
        assert not health.sharded
        assert health.serial_shards == 2

    def test_programming_error_propagates(self, monkeypatch):
        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", self._Buggy
        )
        model = VectorModel(CONFIG, workers=2, retry=_fast_retry())
        with pytest.raises(ValueError, match="max_workers"):
            model.simulate(_trace())


class TestHealthSerialisation:
    def test_round_trip_and_merge(self):
        model = VectorModel(
            CONFIG,
            workers=2,
            retry=_fast_retry(),
            faults=FaultPlan.single(BACKEND_SHARD_CRASH, match="shard0"),
        )
        model.simulate(_trace())
        health = model.last_health
        from repro.hbm.stats import BackendHealth

        clone = BackendHealth.from_dict(health.to_dict())
        assert clone.to_dict() == health.to_dict()
        merged = clone.merge(BackendHealth(backend="vector", workers=2))
        assert merged.shard_retries == health.shard_retries

    def test_chunked_stream_survives_supervision(self, baseline):
        decoded = decode_trace(
            np.asarray(_trace(), dtype=np.uint64), CONFIG
        )
        from repro.hbm.decode import DecodedTrace

        def chunks():
            step = 500
            for lo in range(0, len(decoded), step):
                hi = min(lo + step, len(decoded))
                yield DecodedTrace(
                    channel=decoded.channel[lo:hi],
                    bank=decoded.bank[lo:hi],
                    row=decoded.row[lo:hi],
                    column=decoded.column[lo:hi],
                    global_bank=decoded.global_bank[lo:hi],
                )

        model = VectorModel(
            CONFIG,
            workers=2,
            retry=_fast_retry(),
            faults=FaultPlan.single(BACKEND_SHARD_STATS, match="shard1"),
        )
        stats = model.simulate_decoded(chunks())
        _assert_identical(stats, baseline)
