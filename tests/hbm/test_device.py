"""Tests for the event-driven HBM device model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hbm.bank import Bank
from repro.hbm.channel import Channel, ChannelRequest
from repro.hbm.config import hbm2_config
from repro.hbm.device import HBMDevice


def stride_trace(stride_lines: int, count: int = 2048) -> np.ndarray:
    pa = np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)
    return pa % np.uint64(8 * 1024**3)


class TestBank:
    def test_first_access_misses(self):
        bank = Bank()
        cost, hit = bank.probe(row=3, t_burst=10, t_row_miss=45)
        assert (cost, hit) == (45, False)

    def test_hit_after_commit(self):
        bank = Bank()
        bank.commit(row=3, done_ns=45, was_hit=False)
        cost, hit = bank.probe(row=3, t_burst=10, t_row_miss=45)
        assert (cost, hit) == (10, True)
        assert bank.misses == 1

    def test_would_hit(self):
        bank = Bank()
        assert not bank.would_hit(0)
        bank.commit(row=0, done_ns=45, was_hit=False)
        assert bank.would_hit(0)


class TestChannel:
    def make_channel(self) -> Channel:
        return Channel(banks_per_channel=8, t_burst_ns=10, t_row_miss_ns=45)

    def test_serial_bursts_on_bus(self):
        channel = self.make_channel()
        # Two hits to an open row: second completes one burst later.
        channel.banks[0].commit(row=0, done_ns=0, was_hit=False)
        channel.banks[0].misses = 0
        for index in range(2):
            channel.enqueue(ChannelRequest(index, bank=0, row=0, arrival_ns=0))
        _req, done1, hit1 = channel.service_next(0.0)
        _req, done2, hit2 = channel.service_next(0.0)
        assert hit1 and hit2
        assert done2 == done1 + 10

    def test_activations_overlap_across_banks(self):
        channel = self.make_channel()
        for index in range(2):
            channel.enqueue(ChannelRequest(index, bank=index, row=0, arrival_ns=0))
        _req, done1, _ = channel.service_next(0.0)
        _req, done2, _ = channel.service_next(0.0)
        assert done1 == 45
        assert done2 == 55  # second ACT overlapped; bus adds one burst

    def test_frfcfs_prefers_open_row(self):
        channel = self.make_channel()
        channel.banks[1].commit(row=7, done_ns=0, was_hit=False)
        channel.banks[1].misses = 0
        channel.enqueue(ChannelRequest(0, bank=0, row=3, arrival_ns=0))
        channel.enqueue(ChannelRequest(1, bank=1, row=7, arrival_ns=0))
        request, _done, hit = channel.service_next(0.0)
        assert request.index == 1 and hit

    def test_next_start_estimate_empty(self):
        assert self.make_channel().next_start_estimate() == float("inf")


class TestHBMDevice:
    def setup_method(self):
        self.cfg = hbm2_config()
        self.device = HBMDevice(self.cfg)

    def test_empty_trace(self):
        stats = self.device.simulate(np.zeros(0, dtype=np.uint64))
        assert stats.requests == 0

    def test_single_request(self):
        stats = self.device.simulate(np.array([0], dtype=np.uint64))
        assert stats.requests == 1
        assert stats.row_misses == 1
        assert stats.makespan_ns == pytest.approx(45.0)

    def test_stride_collapse(self):
        t1 = self.device.simulate(stride_trace(1)).throughput_gbps
        t32 = self.device.simulate(stride_trace(32)).throughput_gbps
        assert t1 / t32 > 10

    def test_all_requests_served(self):
        stats = self.device.simulate(stride_trace(4, 999))
        assert stats.requests == 999
        assert stats.per_channel_requests.sum() == 999
        assert stats.row_hits + stats.row_misses == 999

    def test_window_limits_overlap(self):
        wide = HBMDevice(self.cfg, max_inflight=256)
        narrow = HBMDevice(self.cfg, max_inflight=1)
        trace = stride_trace(1, 512)
        assert (
            narrow.simulate(trace).makespan_ns
            > wide.simulate(trace).makespan_ns
        )

    def test_inflight_one_serialises_everything(self):
        device = HBMDevice(self.cfg, max_inflight=1)
        trace = stride_trace(1, 64)
        stats = device.simulate(trace)
        # Every access waits for the previous one: makespan is the sum
        # of individual service times.
        expected = stats.row_misses * 45 + stats.row_hits * 10
        assert stats.makespan_ns == pytest.approx(expected)

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            HBMDevice(self.cfg, max_inflight=0)
