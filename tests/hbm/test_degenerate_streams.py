"""Degenerate chunk streams through every fidelity tier.

Empty iterables, zero-length chunks and one-request-per-chunk streams
are all legal inputs to ``simulate_decoded`` — they fall out naturally
from short traces, trailing partial windows, and the supervisor's
shard splitting — and every tier must handle them identically to the
equivalent whole trace (or, for an empty stream, return all-zero
stats rather than crash).
"""

import numpy as np
import pytest

from repro.hbm import create_backend, hbm2_config
from repro.hbm.decode import DecodedTrace, decode_trace
from repro.hbm.stats import RunStats

CONFIG = hbm2_config()
TIERS = ("fast", "vector", "event")


def _trace(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = CONFIG.total_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


def _empty_chunk() -> DecodedTrace:
    zeros = np.zeros(0, dtype=np.int64)
    return DecodedTrace(
        channel=zeros, bank=zeros, row=zeros, column=zeros, global_bank=zeros
    )


def _slice(decoded: DecodedTrace, lo: int, hi: int) -> DecodedTrace:
    return DecodedTrace(
        channel=decoded.channel[lo:hi],
        bank=decoded.bank[lo:hi],
        row=decoded.row[lo:hi],
        column=decoded.column[lo:hi],
        global_bank=decoded.global_bank[lo:hi],
    )


def _assert_identical(a: RunStats, b: RunStats):
    assert a.requests == b.requests
    assert a.bytes_moved == b.bytes_moved
    assert a.makespan_ns == b.makespan_ns
    assert a.row_hits == b.row_hits
    assert a.row_misses == b.row_misses
    np.testing.assert_array_equal(
        a.per_channel_requests, b.per_channel_requests
    )


@pytest.mark.parametrize("tier", TIERS)
class TestDegenerateStreams:
    def test_empty_iterable(self, tier):
        stats = create_backend(tier, CONFIG).simulate_decoded(iter([]))
        assert stats.requests == 0
        assert stats.bytes_moved == 0
        assert stats.makespan_ns == 0.0
        assert stats.row_hits == 0 and stats.row_misses == 0

    def test_stream_of_only_empty_chunks(self, tier):
        stats = create_backend(tier, CONFIG).simulate_decoded(
            iter([_empty_chunk(), _empty_chunk()])
        )
        assert stats.requests == 0
        assert stats.makespan_ns == 0.0

    def test_empty_whole_trace(self, tier):
        stats = create_backend(tier, CONFIG).simulate_decoded(_empty_chunk())
        assert stats.requests == 0

    def test_zero_length_chunks_interleaved(self, tier):
        decoded = decode_trace(_trace(600), CONFIG)
        whole = create_backend(tier, CONFIG).simulate_decoded(decoded)
        mixed = [
            _empty_chunk(),
            _slice(decoded, 0, 250),
            _empty_chunk(),
            _empty_chunk(),
            _slice(decoded, 250, 600),
            _empty_chunk(),
        ]
        chunked = create_backend(tier, CONFIG).simulate_decoded(iter(mixed))
        _assert_identical(chunked, whole)

    def test_single_request_chunks(self, tier):
        decoded = decode_trace(_trace(96), CONFIG)
        whole = create_backend(tier, CONFIG).simulate_decoded(decoded)
        singles = (
            _slice(decoded, i, i + 1) for i in range(len(decoded))
        )
        chunked = create_backend(tier, CONFIG).simulate_decoded(singles)
        _assert_identical(chunked, whole)


class TestIterDecodedChunks:
    """``iter_decoded_chunks`` at the edges of its domain."""

    def _translator(self):
        from repro.core.mapping import identity_mapping
        from repro.core.sdam import GlobalMappingTranslator

        return GlobalMappingTranslator(
            identity_mapping(CONFIG.layout().width)
        )

    def test_empty_trace_yields_no_chunks(self):
        from repro.hbm.decode import iter_decoded_chunks

        chunks = list(
            iter_decoded_chunks(
                np.zeros(0, dtype=np.uint64), self._translator(), CONFIG
            )
        )
        assert chunks == []
        for tier in TIERS:
            stats = create_backend(tier, CONFIG).simulate_decoded(
                iter_decoded_chunks(
                    np.zeros(0, dtype=np.uint64), self._translator(), CONFIG
                )
            )
            assert stats.requests == 0

    def test_chunk_size_one_is_bit_identical(self):
        from repro.hbm.decode import iter_decoded_chunks

        pa = _trace(64)
        translator = self._translator()
        for tier in TIERS:
            whole = create_backend(tier, CONFIG).simulate_decoded(
                decode_trace(pa, CONFIG)
            )
            chunked = create_backend(tier, CONFIG).simulate_decoded(
                iter_decoded_chunks(pa, translator, CONFIG, 1)
            )
            _assert_identical(chunked, whole)

    def test_invalid_chunk_size_rejected(self):
        from repro.errors import MappingError
        from repro.hbm.decode import iter_decoded_chunks

        with pytest.raises(MappingError, match="chunk_accesses"):
            list(
                iter_decoded_chunks(
                    _trace(8), self._translator(), CONFIG, 0
                )
            )


class TestDegenerateSharded:
    """The supervisor path under degenerate input: some shards own
    zero requests, and an empty stream still produces valid health."""

    def test_sharded_empty_stream(self):
        model = create_backend("vector", CONFIG, workers=2)
        stats = model.simulate_decoded(iter([]))
        assert stats.requests == 0
        assert model.last_health is not None
        assert model.last_health.ok

    def test_sharded_single_request(self):
        decoded = decode_trace(_trace(1), CONFIG)
        serial = create_backend("vector", CONFIG).simulate_decoded(decoded)
        model = create_backend("vector", CONFIG, workers=2)
        sharded = model.simulate_decoded(_slice(decoded, 0, 1))
        _assert_identical(sharded, serial)
