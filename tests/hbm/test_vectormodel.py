"""Tests for the vectorised + sharded ``"vector"`` fidelity tier.

Three contracts matter here:

1. **Streaming invariance** — chunking the decoded input any way at all
   produces bit-identical stats (hypothesis property);
2. **Shard invariance** — sharding channels across workers produces
   bit-identical stats to the serial path, via the lawful
   :meth:`RunStats.merge` reduction;
3. **Event agreement where exactness is expected** — on per-bank
   in-order traces (strides >= 4) the vector tier reproduces the event
   device's makespan and hit counts exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hbm import (
    MemoryBackend,
    available_backends,
    create_backend,
    hbm2_config,
)
from repro.hbm.decode import concat_decoded, decode_trace
from repro.hbm.device import HBMDevice
from repro.hbm.stats import RemapTraffic, RunStats
from repro.hbm.vectormodel import VectorModel

CONFIG = hbm2_config()


def _random_trace(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = CONFIG.total_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


def _stride_trace(stride_lines: int, count: int = 2048) -> np.ndarray:
    pa = np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)
    return pa % np.uint64(CONFIG.total_bytes)


def _chunked(decoded, sizes):
    start = 0
    for size in sizes:
        yield DecodedSlice(decoded, start, start + size)
        start += size
    if start < len(decoded):
        yield DecodedSlice(decoded, start, len(decoded))


def DecodedSlice(decoded, lo, hi):
    from repro.hbm.decode import DecodedTrace

    return DecodedTrace(
        channel=decoded.channel[lo:hi],
        bank=decoded.bank[lo:hi],
        row=decoded.row[lo:hi],
        column=decoded.column[lo:hi],
        global_bank=decoded.global_bank[lo:hi],
    )


def _assert_stats_identical(a: RunStats, b: RunStats):
    assert a.requests == b.requests
    assert a.bytes_moved == b.bytes_moved
    assert a.makespan_ns == b.makespan_ns
    assert a.row_hits == b.row_hits
    assert a.row_misses == b.row_misses
    np.testing.assert_array_equal(
        a.per_channel_requests, b.per_channel_requests
    )
    np.testing.assert_array_equal(
        a.per_channel_busy_ns, b.per_channel_busy_ns
    )


class TestBasics:
    def test_registered_as_vector(self):
        assert "vector" in available_backends()
        backend = create_backend("vector", CONFIG, max_inflight=64)
        assert isinstance(backend, VectorModel)
        assert isinstance(backend, MemoryBackend)

    def test_empty_trace(self):
        stats = VectorModel(CONFIG).simulate(np.zeros(0, dtype=np.uint64))
        assert stats.requests == 0
        assert stats.makespan_ns == 0.0

    def test_empty_chunk_stream(self):
        stats = VectorModel(CONFIG).simulate_decoded(iter([]))
        assert stats.requests == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(SimulationError):
            VectorModel(CONFIG, max_inflight=0)
        with pytest.raises(SimulationError):
            VectorModel(CONFIG, block_accesses=0)

    def test_forced_miss_pays_full_cost(self):
        trace = _stride_trace(1, 512)
        decoded = decode_trace(trace, CONFIG)
        model = VectorModel(CONFIG)
        free = model.simulate_decoded(decoded)
        forced = model.simulate_decoded(
            decoded, forced_miss=np.ones(len(decoded), dtype=bool)
        )
        assert forced.row_hits == 0
        assert forced.makespan_ns > free.makespan_ns

    def test_forced_miss_rejected_for_chunks(self):
        decoded = decode_trace(_stride_trace(1, 64), CONFIG)
        with pytest.raises(SimulationError, match="forced_miss"):
            VectorModel(CONFIG).simulate_decoded(
                iter([decoded]), forced_miss=np.ones(64, dtype=bool)
            )

    def test_simulate_equals_simulate_decoded(self):
        ha = _random_trace(2048, seed=3)
        model = VectorModel(CONFIG)
        _assert_stats_identical(
            model.simulate(ha),
            model.simulate_decoded(decode_trace(ha, CONFIG)),
        )


class TestEventAgreement:
    """Where the vector tier must match the event reference exactly.

    Strides >= 4 touch each bank with a single in-order row stream, so
    neither FR-FCFS reordering nor the admission window can change
    anything: hit classification and the timing recurrence coincide.
    """

    @pytest.mark.parametrize("stride", (4, 8, 16, 32))
    def test_exact_makespan_and_hits(self, stride):
        trace = _stride_trace(stride)
        vector = VectorModel(CONFIG).simulate(trace)
        event = HBMDevice(CONFIG).simulate(trace)
        assert vector.makespan_ns == event.makespan_ns
        assert vector.row_hits == event.row_hits
        assert vector.row_misses == event.row_misses
        np.testing.assert_array_equal(
            vector.per_channel_requests, event.per_channel_requests
        )

    @pytest.mark.parametrize("seed", (0, 7))
    def test_random_trace_band(self, seed):
        """Contended traces stay within the fast-tier precedent band."""
        trace = _random_trace(4096, seed=seed)
        vector = VectorModel(CONFIG).simulate(trace)
        event = HBMDevice(CONFIG).simulate(trace)
        ratio = vector.makespan_ns / event.makespan_ns
        assert 0.5 < ratio < 2.0


class TestChunkInvariance:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=700), max_size=8),
        seed=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_chunking_is_bit_identical(self, sizes, seed):
        trace = _random_trace(1500, seed=seed)
        decoded = decode_trace(trace, CONFIG)
        model = VectorModel(CONFIG, block_accesses=256)
        whole = model.simulate_decoded(decoded)
        chunked = model.simulate_decoded(_chunked(decoded, sizes))
        _assert_stats_identical(whole, chunked)

    def test_device_chunked_equals_whole(self):
        """The event reference also accepts chunked input, bit-identically."""
        trace = _random_trace(3000, seed=11)
        decoded = decode_trace(trace, CONFIG)
        device = HBMDevice(CONFIG)
        whole = device.simulate_decoded(decoded)
        chunked = device.simulate_decoded(_chunked(decoded, [997, 512, 64]))
        _assert_stats_identical(whole, chunked)

    def test_fast_model_accepts_chunks(self):
        from repro.hbm.fastmodel import WindowModel

        trace = _random_trace(2048, seed=13)
        decoded = decode_trace(trace, CONFIG)
        model = WindowModel(CONFIG)
        whole = model.simulate_decoded(decoded)
        chunked = model.simulate_decoded(_chunked(decoded, [300, 1000]))
        _assert_stats_identical(whole, chunked)


class TestSharding:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_sharded_bit_identical_to_serial(self, workers):
        trace = _random_trace(8192, seed=5)
        serial = VectorModel(CONFIG, workers=0).simulate(trace)
        sharded = VectorModel(CONFIG, workers=workers).simulate(trace)
        _assert_stats_identical(serial, sharded)

    def test_sharded_chunked_stream(self):
        trace = _random_trace(6000, seed=6)
        decoded = decode_trace(trace, CONFIG)
        serial = VectorModel(CONFIG).simulate_decoded(decoded)
        sharded = VectorModel(CONFIG, workers=3).simulate_decoded(
            _chunked(decoded, [2500, 2500])
        )
        _assert_stats_identical(serial, sharded)

    def test_more_workers_than_channels(self):
        trace = _random_trace(1024, seed=8)
        serial = VectorModel(CONFIG).simulate(trace)
        sharded = VectorModel(
            CONFIG, workers=CONFIG.num_channels + 5
        ).simulate(trace)
        _assert_stats_identical(serial, sharded)


class TestMergeLaws:
    def _partials(self):
        trace = _random_trace(4096, seed=2)
        decoded = decode_trace(trace, CONFIG)
        from repro.hbm.vectormodel import _run_lanes

        thirds = np.array_split(np.arange(CONFIG.num_channels), 3)
        return [
            _run_lanes(CONFIG, 8, 1024, ids, [(decoded, None)])
            for ids in thirds
        ]

    def test_identity(self):
        a, _, _ = self._partials()
        _assert_stats_identical(a.merge(RunStats.empty(a.num_channels)), a)
        _assert_stats_identical(RunStats.empty(a.num_channels).merge(a), a)

    def test_commutative(self):
        a, b, _ = self._partials()
        _assert_stats_identical(a.merge(b), b.merge(a))

    def test_associative_and_add(self):
        a, b, c = self._partials()
        _assert_stats_identical(
            a.merge(b).merge(c), a.merge(b.merge(c))
        )
        _assert_stats_identical(a + b + c, a.merge(b).merge(c))

    def test_channel_mismatch_rejected(self):
        a = RunStats.empty(8)
        with pytest.raises(ValueError, match="channel counts"):
            a.merge(RunStats.empty(16))

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            RunStats.empty(4) + 1

    def test_remap_traffic_merge(self):
        a = RemapTraffic(remaps=2, lines_copied=100, migration_ns=50.0)
        b = RemapTraffic(remaps=1, lines_copied=10, migration_ns=5.0)
        merged = a + b
        assert merged.remaps == 3
        assert merged.lines_copied == 110
        assert merged.migration_ns == 55.0
        assert merged.overhead_ns == 55.0


class TestStreamingDecode:
    def test_iter_chunks_bit_identical(self):
        from repro.core.mapping import identity_mapping
        from repro.core.sdam import GlobalMappingTranslator
        from repro.hbm.decode import decode_translated, iter_decoded_chunks

        pa = _random_trace(5000, seed=4)
        translator = GlobalMappingTranslator(
            identity_mapping(CONFIG.layout().width)
        )
        whole = decode_translated(pa, translator, CONFIG)
        rebuilt = concat_decoded(
            iter_decoded_chunks(pa, translator, CONFIG, chunk_accesses=777)
        )
        np.testing.assert_array_equal(whole.channel, rebuilt.channel)
        np.testing.assert_array_equal(whole.bank, rebuilt.bank)
        np.testing.assert_array_equal(whole.row, rebuilt.row)
        np.testing.assert_array_equal(whole.column, rebuilt.column)
        np.testing.assert_array_equal(whole.global_bank, rebuilt.global_bank)

    def test_chunk_accesses_validated(self):
        from repro.core.mapping import identity_mapping
        from repro.core.sdam import GlobalMappingTranslator
        from repro.errors import MappingError
        from repro.hbm.decode import iter_decoded_chunks

        translator = GlobalMappingTranslator(
            identity_mapping(CONFIG.layout().width)
        )
        with pytest.raises(MappingError, match="chunk_accesses"):
            list(
                iter_decoded_chunks(
                    _random_trace(16), translator, CONFIG, chunk_accesses=0
                )
            )
