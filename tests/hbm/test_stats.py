"""Tests for RunStats derived metrics."""

import numpy as np
import pytest

from repro.hbm.stats import RunStats


def make_stats(**overrides) -> RunStats:
    defaults = dict(
        requests=100,
        bytes_moved=6400,
        makespan_ns=100.0,
        row_hits=75,
        row_misses=25,
        num_channels=4,
        per_channel_requests=np.array([25, 25, 25, 25]),
        per_channel_busy_ns=np.array([100.0, 100.0, 100.0, 100.0]),
    )
    defaults.update(overrides)
    return RunStats(**defaults)


class TestDerivedMetrics:
    def test_throughput(self):
        assert make_stats().throughput_gbps == pytest.approx(64.0)

    def test_throughput_zero_makespan(self):
        assert make_stats(makespan_ns=0.0).throughput_gbps == 0.0

    def test_row_hit_rate(self):
        assert make_stats().row_hit_rate == pytest.approx(0.75)

    def test_row_hit_rate_empty(self):
        assert make_stats(row_hits=0, row_misses=0).row_hit_rate == 0.0

    def test_channels_touched(self):
        stats = make_stats(per_channel_requests=np.array([10, 0, 5, 0]))
        assert stats.channels_touched == 2

    def test_clp_utilization_full(self):
        assert make_stats().clp_utilization == pytest.approx(1.0)

    def test_clp_utilization_single_channel(self):
        stats = make_stats(
            per_channel_requests=np.array([100, 0, 0, 0]),
            per_channel_busy_ns=np.array([100.0, 0, 0, 0]),
        )
        assert stats.clp_utilization == pytest.approx(0.25)

    def test_request_balance_even(self):
        assert make_stats().request_balance == pytest.approx(1.0)

    def test_request_balance_skewed(self):
        stats = make_stats(per_channel_requests=np.array([100, 0, 0, 0]))
        assert stats.request_balance == 0.0

    def test_summary_is_readable(self):
        text = make_stats().summary()
        assert "GB/s" in text and "CLP" in text
