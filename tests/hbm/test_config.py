"""Tests for device configurations."""

import pytest

from repro.errors import ConfigError
from repro.hbm.config import HBMConfig, ddr4_config, hbm2_config


class TestHBM2Defaults:
    def setup_method(self):
        self.cfg = hbm2_config()

    def test_paper_geometry(self):
        # Section 2.1: 32 channels, 256 B rows, 8 banks, 8 GB.
        assert self.cfg.num_channels == 32
        assert self.cfg.row_bytes == 256
        assert self.cfg.banks_per_channel == 8
        assert self.cfg.total_bytes == 8 * 1024**3

    def test_bit_widths(self):
        assert self.cfg.channel_bits == 5
        assert self.cfg.bank_bits == 3
        assert self.cfg.column_bits == 2  # RLP = 4 (Section 2.1)
        assert self.cfg.row_bits == 17
        assert self.cfg.address_bits == 33

    def test_layout_tiles_address(self):
        layout = self.cfg.layout()
        assert layout.width == self.cfg.address_bits
        assert layout.field_names == ["line", "channel", "column", "bank", "row"]

    def test_peak_bandwidth_near_paper(self):
        # Fig. 1/3 ceiling is ~200 GB/s on the VU37P platform.
        assert 180 < self.cfg.peak_bandwidth_gbps < 230

    def test_rows_per_bank(self):
        assert self.cfg.rows_per_bank == 1 << 17
        assert self.cfg.num_banks == 256


class TestDDR4Reference:
    def test_section21_comparison(self):
        ddr = ddr4_config()
        hbm = hbm2_config()
        # 8x more CLP, 8x smaller rows (Section 2.1).
        assert hbm.num_channels == 8 * ddr.num_channels
        assert ddr.row_bytes == 8 * hbm.row_bytes
        assert ddr.peak_bandwidth_gbps == pytest.approx(102.4)

    def test_overrides(self):
        ddr = ddr4_config(num_channels=8)
        assert ddr.num_channels == 8


class TestFrequencyScaling:
    def test_scaled_quarter(self):
        cfg = hbm2_config().scaled(0.25)
        assert cfg.effective_t_burst_ns == pytest.approx(40.0)
        assert cfg.peak_bandwidth_gbps == pytest.approx(
            hbm2_config().peak_bandwidth_gbps / 4
        )

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            hbm2_config().scaled(0)


class TestValidation:
    def test_non_power_of_two(self):
        with pytest.raises(ConfigError):
            HBMConfig(num_channels=12)

    def test_row_smaller_than_line(self):
        with pytest.raises(ConfigError):
            HBMConfig(row_bytes=32)

    def test_bad_timing(self):
        with pytest.raises(ConfigError):
            HBMConfig(t_burst_ns=50, t_row_miss_ns=10)
