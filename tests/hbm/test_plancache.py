"""Tests for the shared immutable plan cache."""

import threading

import numpy as np
import pytest

from repro.core.mapping import PermutationMapping, identity_mapping
from repro.errors import ConfigError
from repro.hbm.config import hbm2_config
from repro.hbm.decode import DecodePlan, plan_for
from repro.hbm.plancache import PlanCache, default_plan_cache

CONFIG = hbm2_config()


class TestPlanCache:
    def test_builds_on_miss_returns_same_object_on_hit(self):
        cache = PlanCache()
        built = []

        def build():
            built.append(1)
            return object()

        first = cache.get("k", build)
        second = cache.get("k", build)
        assert first is second
        assert built == [1]
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.get("a", lambda: "A")
        cache.get("b", lambda: "B")
        cache.get("a", lambda: "A")  # refresh a: b is now the LRU entry
        cache.get("c", lambda: "C")
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_stats_snapshot(self):
        cache = PlanCache(maxsize=4)
        cache.get("a", lambda: 1)
        cache.get("a", lambda: 1)
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "maxsize": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_clear_keeps_counters(self):
        cache = PlanCache()
        cache.get("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_maxsize_validated(self):
        with pytest.raises(ConfigError):
            PlanCache(maxsize=0)

    def test_hit_rate_zero_before_lookups(self):
        assert PlanCache().hit_rate == 0.0

    def test_concurrent_gets_build_once(self):
        cache = PlanCache()
        built = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(50):
                cache.get("shared", lambda: built.append(1) or object())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(built) == 1
        assert cache.hits == 8 * 50 - 1

    def test_default_cache_is_process_wide(self):
        assert default_plan_cache() is default_plan_cache()

    def test_multithread_hammer_accounting_is_exact(self):
        """Many threads, many keys, interleaved lookups: the stats
        ledger must balance (hits + misses == lookups) and no key's
        builder may ever run twice — the service front-end leans on
        both guarantees when tenant lanes share one cache."""
        keys = [f"plan{i}" for i in range(16)]
        cache = PlanCache(maxsize=len(keys))  # no evictions in play
        builds = {key: 0 for key in keys}
        builds_lock = threading.Lock()
        n_threads, rounds = 8, 40
        barrier = threading.Barrier(n_threads)

        def builder(key):
            def build():
                with builds_lock:
                    builds[key] += 1
                return (key, object())

            return build

        def worker(offset):
            barrier.wait()
            for round_no in range(rounds):
                # Each thread walks the keys from a different offset so
                # first-touches are spread across all threads.
                key = keys[(round_no + offset) % len(keys)]
                value = cache.get(key, builder(key))
                assert value[0] == key

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lookups = n_threads * rounds
        assert cache.hits + cache.misses == lookups
        assert all(count == 1 for count in builds.values())
        assert cache.misses == len(keys)
        assert cache.hits == lookups - len(keys)
        assert cache.evictions == 0
        assert len(cache) == len(keys)


class TestPlanForIntegration:
    def test_plan_for_shares_through_explicit_cache(self):
        cache = PlanCache()
        first = plan_for(CONFIG, cache=cache)
        second = plan_for(CONFIG, cache=cache)
        assert first is second
        assert isinstance(first, DecodePlan)
        assert cache.misses == 1 and cache.hits == 1

    def test_identity_operator_dedups_with_none(self):
        """``operator=None`` normalises to the identity: one plan."""
        cache = PlanCache()
        layout = CONFIG.layout()
        plain = plan_for(CONFIG, cache=cache)
        mapped = plan_for(
            CONFIG, identity_mapping(layout.width).as_operator(), cache=cache
        )
        assert plain is mapped
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_operators_get_distinct_plans(self):
        cache = PlanCache()
        layout = CONFIG.layout()
        source = np.roll(np.arange(layout.width), 1)
        shuffled = PermutationMapping(source).as_operator()
        plain = plan_for(CONFIG, cache=cache)
        mapped = plan_for(CONFIG, shuffled, cache=cache)
        assert plain is not mapped
        assert cache.misses == 2

    def test_cached_plan_decodes_identically(self):
        cache = PlanCache()
        pa = np.arange(0, 1 << 16, 64, dtype=np.uint64)
        fresh = DecodePlan(CONFIG).decode(pa)
        cached = plan_for(CONFIG, cache=cache).decode(pa)
        np.testing.assert_array_equal(fresh.channel, cached.channel)
        np.testing.assert_array_equal(fresh.bank, cached.bank)
        np.testing.assert_array_equal(fresh.row, cached.row)
        np.testing.assert_array_equal(fresh.column, cached.column)
