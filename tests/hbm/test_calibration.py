"""Calibration gate: the ``"vector"`` tier vs the event reference.

The vector tier exists to replace the event loop in the evaluate hot
path, so its fidelity is asserted — not assumed — on all six paper
systems driving the mixed-stride workload end to end through
:class:`~repro.system.machine.Machine`.  Divergence from the event
device is *declared* per system (the bands below were measured, and
regressions outside them fail the gate), and the vector tier must stay
at least as faithful as the shipped ``"fast"`` tier precedent: both
share the FR-FCFS batch-rule optimism on interleaved streams, which is
where the widest bands come from.

Scheduling fidelity aside, everything the decode datapath determines —
request counts, bytes moved, per-channel request distribution — must be
identical across all three tiers; and the vector tier's results must be
deterministic (bit-identical machine fingerprints across runs).
"""

import numpy as np
import pytest

from repro import api
from repro.system import system_by_key
from repro.system.machine import Machine

#: The six paper systems the calibration gate covers.
SYSTEMS = (
    "bs_dm",
    "bs_bsm",
    "bs_hm",
    "sdm_bsm",
    "sdm_bsm_ml4",
    "sdm_bsm_ml32",
)

TIERS = ("fast", "vector", "event")

#: Declared vector/event makespan-ratio tolerance per system (measured
#: on the mixed-stride workload; the low bands are the shared
#: batch-rule optimism on interleaved streams — the fast tier sits in
#: the same place).
MAKESPAN_BANDS = {
    "bs_dm": (0.50, 1.10),
    "bs_bsm": (0.20, 1.10),
    "bs_hm": (0.40, 1.10),
    "sdm_bsm": (0.20, 1.10),
    "sdm_bsm_ml4": (0.35, 1.10),
    "sdm_bsm_ml32": (0.28, 1.10),
}


@pytest.fixture(scope="module")
def matrix():
    """MachineResult for every tier x system on one shared workload."""
    workload = api.mixed_stride_workload()
    results: dict[tuple[str, str], object] = {}
    for key in SYSTEMS:
        for tier in TIERS:
            machine = Machine(
                system_by_key(key),
                backend=tier,
                dl_config=api.QUICK_DL_CONFIG,
            )
            results[tier, key] = machine.run(workload)
    return results


@pytest.mark.parametrize("key", SYSTEMS)
def test_vector_within_declared_event_band(matrix, key):
    vector = matrix["vector", key].stats
    event = matrix["event", key].stats
    low, high = MAKESPAN_BANDS[key]
    ratio = vector.makespan_ns / event.makespan_ns
    assert low < ratio < high, (
        f"{key}: vector/event makespan ratio {ratio:.3f} outside "
        f"declared band ({low}, {high})"
    )


@pytest.mark.parametrize("key", SYSTEMS)
def test_vector_no_worse_than_fast_precedent(matrix, key):
    """The new tier may not calibrate worse than the shipped fast tier."""
    event_ns = matrix["event", key].stats.makespan_ns
    vector_ratio = matrix["vector", key].stats.makespan_ns / event_ns
    fast_ratio = matrix["fast", key].stats.makespan_ns / event_ns
    assert abs(np.log(vector_ratio)) <= abs(np.log(fast_ratio)) + 0.20


@pytest.mark.parametrize("key", SYSTEMS)
def test_vector_tracks_fast_tier_closely(matrix, key):
    """Vector and fast share the batch hit rule: results stay close."""
    vector = matrix["vector", key].stats
    fast = matrix["fast", key].stats
    assert 0.85 < vector.makespan_ns / fast.makespan_ns < 1.18
    total = vector.row_hits + vector.row_misses
    assert abs(vector.row_hits - fast.row_hits) <= max(64, 0.05 * total)


@pytest.mark.parametrize("key", SYSTEMS)
def test_decode_invariants_identical_across_tiers(matrix, key):
    """Everything upstream of scheduling must not depend on the tier."""
    reference = matrix["event", key].stats
    for tier in ("fast", "vector"):
        stats = matrix[tier, key].stats
        assert stats.requests == reference.requests
        assert stats.bytes_moved == reference.bytes_moved
        np.testing.assert_array_equal(
            stats.per_channel_requests, reference.per_channel_requests
        )


def test_vector_fingerprint_deterministic(matrix):
    workload = api.mixed_stride_workload()
    machine = Machine(
        system_by_key("sdm_bsm"),
        backend="vector",
        dl_config=api.QUICK_DL_CONFIG,
    )
    again = machine.run(workload)
    assert (
        again.fingerprint() == matrix["vector", "sdm_bsm"].fingerprint()
    )


def test_hit_rate_ordering_agrees_with_fast(matrix):
    """Across systems, vector and fast rank mapping quality identically.

    The paper's claims rest on *relative* mapping quality.  The two
    batch-rule tiers share a hit model, so their ranking of the six
    systems' hit rates must coincide exactly — a drifted hit rule shows
    up here before it shows up in the wide event bands.  (Event-side
    ordering is not asserted: FR-FCFS queue dynamics legitimately
    reorder the interleave-heavy systems.)
    """
    vector_order = sorted(
        SYSTEMS, key=lambda k: matrix["vector", k].stats.row_hit_rate
    )
    fast_order = sorted(
        SYSTEMS, key=lambda k: matrix["fast", k].stats.row_hit_rate
    )
    assert vector_order == fast_order
