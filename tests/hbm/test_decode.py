"""Tests for hardware-address decode."""

import numpy as np

from repro.hbm.config import hbm2_config
from repro.hbm.decode import decode_trace


class TestDecode:
    def setup_method(self):
        self.cfg = hbm2_config()

    def test_consecutive_lines_rotate_channels(self):
        ha = np.arange(64, dtype=np.uint64) * np.uint64(64)
        decoded = decode_trace(ha, self.cfg)
        np.testing.assert_array_equal(
            decoded.channel, np.arange(64) % 32
        )

    def test_column_increments_after_channel_wrap(self):
        ha = np.array([0, 32 * 64, 64 * 64], dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        np.testing.assert_array_equal(decoded.column, [0, 1, 2])

    def test_bank_and_row(self):
        layout = self.cfg.layout()
        ha = np.array(
            [layout.encode(bank=5, row=1234, channel=7)], dtype=np.uint64
        )
        decoded = decode_trace(ha, self.cfg)
        assert decoded.bank[0] == 5
        assert decoded.row[0] == 1234
        assert decoded.channel[0] == 7

    def test_global_bank_unique_per_channel(self):
        layout = self.cfg.layout()
        ha = np.array(
            [
                layout.encode(channel=0, bank=3),
                layout.encode(channel=1, bank=3),
            ],
            dtype=np.uint64,
        )
        decoded = decode_trace(ha, self.cfg)
        assert decoded.global_bank[0] != decoded.global_bank[1]
        assert decoded.global_bank[1] == 1 * 8 + 3

    def test_len(self):
        ha = np.zeros(5, dtype=np.uint64)
        assert len(decode_trace(ha, self.cfg)) == 5

    def test_roundtrip_encode_decode(self):
        layout = self.cfg.layout()
        rng = np.random.default_rng(1)
        ha = rng.integers(0, self.cfg.total_bytes, 256, dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        rebuilt = layout.encode(
            line=ha & np.uint64(63),
            channel=decoded.channel.astype(np.uint64),
            column=decoded.column.astype(np.uint64),
            bank=decoded.bank.astype(np.uint64),
            row=decoded.row.astype(np.uint64),
        )
        np.testing.assert_array_equal(rebuilt, ha)
