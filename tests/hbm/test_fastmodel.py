"""Tests for the vectorised window model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hbm.config import hbm2_config
from repro.hbm.decode import decode_trace
from repro.hbm.fastmodel import WindowModel, row_hit_mask


def stride_trace(stride_lines: int, count: int = 4096) -> np.ndarray:
    pa = np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)
    return pa % np.uint64(8 * 1024**3)


class TestRowHitMask:
    def setup_method(self):
        self.cfg = hbm2_config()

    def test_empty(self):
        decoded = decode_trace(np.zeros(0, dtype=np.uint64), self.cfg)
        assert row_hit_mask(decoded).size == 0

    def test_repeat_same_line_hits(self):
        ha = np.zeros(4, dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        hits = row_hit_mask(decoded)
        assert hits.tolist() == [False, True, True, True]

    def test_alternating_rows_never_hit_in_order(self):
        """With no scheduler reordering, alternating rows thrash."""
        layout = self.cfg.layout()
        a = layout.encode(row=1)
        b = layout.encode(row=2)
        ha = np.array([a, b, a, b], dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        assert not row_hit_mask(decoded, reorder_window=1).any()

    def test_alternating_rows_batch_under_frfcfs(self):
        """FR-FCFS batching serves same-row requests back to back."""
        layout = self.cfg.layout()
        a = layout.encode(row=1)
        b = layout.encode(row=2)
        ha = np.array([a, b, a, b], dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        hits = row_hit_mask(decoded, reorder_window=8)
        # One miss per row batch, one hit per revisit within the window.
        assert hits.sum() == 2

    def test_batch_boundary_forces_reactivation(self):
        """The same row re-referenced in a later batch misses again."""
        layout = self.cfg.layout()
        a = layout.encode(row=1)
        ha = np.full(17, a, dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        hits = row_hit_mask(decoded, reorder_window=8)
        # 17 accesses in batches of 8: three batches, one miss each.
        assert int((~hits).sum()) == 3

    def test_different_banks_do_not_interfere(self):
        layout = self.cfg.layout()
        a = layout.encode(bank=0, row=5)
        b = layout.encode(bank=1, row=9)
        ha = np.array([a, b, a, b], dtype=np.uint64)
        decoded = decode_trace(ha, self.cfg)
        assert row_hit_mask(decoded).tolist() == [False, False, True, True]

    def test_streaming_hit_rate(self):
        # 4 lines per 256 B row: 3 of every 4 accesses to a bank hit.
        decoded = decode_trace(stride_trace(1), self.cfg)
        hits = row_hit_mask(decoded)
        assert hits.mean() == pytest.approx(0.75, abs=0.01)


class TestWindowModel:
    def setup_method(self):
        self.cfg = hbm2_config()
        self.model = WindowModel(self.cfg)

    def test_empty_trace(self):
        stats = self.model.simulate(np.zeros(0, dtype=np.uint64))
        assert stats.requests == 0
        assert stats.throughput_gbps == 0.0

    def test_streaming_near_peak(self):
        stats = self.model.simulate(stride_trace(1, 8192))
        assert stats.channels_touched == 32
        assert stats.throughput_gbps > 0.4 * self.cfg.peak_bandwidth_gbps

    def test_stride_collapse_shape(self):
        """Fig. 3(a): throughput collapses ~20x from stride 1 to 32."""
        t1 = self.model.simulate(stride_trace(1, 8192)).throughput_gbps
        t32 = self.model.simulate(stride_trace(32, 8192)).throughput_gbps
        assert t1 / t32 > 10

    def test_stride_monotone_decay(self):
        previous = float("inf")
        for stride in (1, 2, 8, 16, 32):
            gbps = self.model.simulate(stride_trace(stride, 8192)).throughput_gbps
            assert gbps <= previous * 1.01
            previous = gbps

    def test_worst_case_single_channel(self):
        stats = self.model.simulate(stride_trace(32, 4096))
        assert stats.channels_touched == 1
        assert stats.clp_utilization == pytest.approx(1 / 32, rel=0.05)

    def test_clp_utilization_streaming(self):
        stats = self.model.simulate(stride_trace(1, 8192))
        assert stats.clp_utilization > 0.9

    def test_invalid_inflight(self):
        with pytest.raises(SimulationError):
            WindowModel(self.cfg, max_inflight=0)

    def test_makespan_additive_across_windows(self):
        short = self.model.simulate(stride_trace(1, 64))
        long = self.model.simulate(stride_trace(1, 128))
        assert long.makespan_ns > short.makespan_ns

    def test_frequency_scaling_slows_device(self):
        slow = WindowModel(self.cfg.scaled(0.25))
        fast_t = self.model.simulate(stride_trace(1, 4096)).throughput_gbps
        slow_t = slow.simulate(stride_trace(1, 4096)).throughput_gbps
        assert fast_t / slow_t == pytest.approx(4.0, rel=0.01)

    def test_request_balance_metric(self):
        balanced = self.model.simulate(stride_trace(1, 4096))
        skewed = self.model.simulate(stride_trace(32, 4096))
        assert balanced.request_balance > 0.99
        assert skewed.request_balance == 0.0
