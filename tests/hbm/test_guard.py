"""Tests for the cross-tier divergence guard (:mod:`repro.hbm.guard`).

The guard's contract: a healthy primary passes through untouched (same
stats, report attached), a diverging primary is either demoted to the
reference tier or raises a structured error — never silently wrong —
and the whole decision is deterministic and picklable.
"""

import pickle

import numpy as np
import pytest

from repro.errors import BackendDivergenceError, ConfigError
from repro.faults import FaultPlan
from repro.faults.sites import BACKEND_DIVERGENCE
from repro.hbm import GuardedBackend, TierFactory, hbm2_config
from repro.hbm.decode import DecodedTrace, decode_trace

CONFIG = hbm2_config()


def _trace(n: int = 1024, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = CONFIG.total_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


def _chunks(decoded: DecodedTrace, step: int):
    for lo in range(0, len(decoded), step):
        hi = min(lo + step, len(decoded))
        yield DecodedTrace(
            channel=decoded.channel[lo:hi],
            bank=decoded.bank[lo:hi],
            row=decoded.row[lo:hi],
            column=decoded.column[lo:hi],
            global_bank=decoded.global_bank[lo:hi],
        )


def _guard(**kwargs) -> GuardedBackend:
    primary = TierFactory("vector", CONFIG, max_inflight=64)
    reference = TierFactory("event", CONFIG, max_inflight=64)
    return GuardedBackend(
        primary(),
        primary,
        reference,
        **kwargs,
    )


class TestPassthrough:
    def test_matches_unguarded_primary_and_attaches_report(self):
        trace = _trace()
        guard = _guard(sample=0.5)
        plain = TierFactory("vector", CONFIG, max_inflight=64)()
        stats = guard.simulate(trace)
        expected = plain.simulate(trace)
        assert stats.makespan_ns == expected.makespan_ns
        assert stats.requests == expected.requests
        report = guard.last_health.guard
        assert report is not None
        assert not report["diverged"]
        assert report["checks"], "at least one chunk must be sampled"
        assert not guard.demoted

    def test_sampling_is_deterministic(self):
        decoded = decode_trace(_trace(2048), CONFIG)
        picked = [
            _guard(sample=0.3, seed=7)._sampled_indices(
                list(_chunks(decoded, 128))
            )
            for _ in range(2)
        ]
        assert picked[0] == picked[1]
        assert picked[0], "a guarded run never skips verification"

    def test_empty_chunks_are_never_sampled(self):
        decoded = decode_trace(_trace(256), CONFIG)
        empty = DecodedTrace(
            channel=np.zeros(0, dtype=np.int64),
            bank=np.zeros(0, dtype=np.int64),
            row=np.zeros(0, dtype=np.int64),
            column=np.zeros(0, dtype=np.int64),
            global_bank=np.zeros(0, dtype=np.int64),
        )
        chunks = [empty, decoded, empty]
        picked = _guard(sample=0.01)._sampled_indices(chunks)
        assert picked == [1]

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="mode"):
            _guard(mode="panic")
        with pytest.raises(ConfigError, match="sample"):
            _guard(sample=0.0)
        with pytest.raises(ConfigError, match="tolerance"):
            _guard(tolerance=(2.0, 0.5))


class TestDivergence:
    def _forced(self, mode: str) -> GuardedBackend:
        return _guard(
            sample=1.0,
            mode=mode,
            faults=FaultPlan.single(BACKEND_DIVERGENCE, match="chunk0"),
        )

    def test_demote_reruns_through_reference(self):
        trace = _trace()
        guard = self._forced("demote")
        reference = TierFactory("event", CONFIG, max_inflight=64)()
        stats = guard.simulate(trace)
        expected = reference.simulate(trace)
        assert stats.makespan_ns == expected.makespan_ns
        assert guard.demoted
        report = guard.last_health.guard
        assert report["diverged"]
        assert report["demoted"]
        failing = [c for c in report["checks"] if not c["ok"]]
        assert failing and failing[0]["injected"]
        events = [d["event"] for d in guard.last_health.degradations]
        assert "tier-demoted" in events
        assert not guard.last_health.ok

    def test_demotion_is_sticky(self):
        trace = _trace()
        guard = self._forced("demote")
        guard.simulate(trace)
        assert guard.demoted
        # The fault budget is spent; a later run still uses the
        # reference tier and says so.
        again = guard.simulate(trace)
        reference = TierFactory("event", CONFIG, max_inflight=64)()
        assert again.makespan_ns == reference.simulate(trace).makespan_ns
        events = [d["event"] for d in guard.last_health.degradations]
        assert events == ["tier-demoted"]

    def test_raise_mode_carries_structured_report(self):
        guard = self._forced("raise")
        with pytest.raises(BackendDivergenceError) as excinfo:
            guard.simulate(_trace())
        report = excinfo.value.report
        assert report["diverged"]
        assert report["primary"] == "vector"
        assert report["reference"] == "event"
        assert any(c["injected"] for c in report["checks"])

    def test_divergence_on_chunked_stream(self):
        decoded = decode_trace(_trace(1500), CONFIG)
        guard = _guard(
            sample=1.0,
            mode="demote",
            faults=FaultPlan.single(BACKEND_DIVERGENCE, match="chunk1"),
        )
        reference = TierFactory("event", CONFIG, max_inflight=64)()
        stats = guard.simulate_decoded(_chunks(decoded, 512))
        expected = reference.simulate_decoded(_chunks(decoded, 512))
        assert stats.makespan_ns == expected.makespan_ns
        assert guard.demoted


class TestPickling:
    def test_guard_round_trips_demotion_state(self):
        trace = _trace(512)
        guard = _guard(
            sample=1.0,
            mode="demote",
            faults=FaultPlan.single(BACKEND_DIVERGENCE, match="chunk0"),
        )
        guard.simulate(trace)
        assert guard.demoted
        clone = pickle.loads(pickle.dumps(guard))
        assert clone.demoted
        reference = TierFactory("event", CONFIG, max_inflight=64)()
        assert (
            clone.simulate(trace).makespan_ns
            == reference.simulate(trace).makespan_ns
        )
