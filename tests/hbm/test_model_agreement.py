"""Cross-fidelity check: the fast model tracks the event-driven model.

The two tiers share decode + timing but differ in scheduling detail, so
we require (1) identical throughput *ordering* over the canonical stride
workloads, and (2) magnitudes within a 2x band — tight enough to catch a
broken cost model, loose enough for scheduling differences.
"""

import numpy as np
import pytest

from repro.hbm.config import hbm2_config
from repro.hbm.device import HBMDevice
from repro.hbm.fastmodel import WindowModel

STRIDES = (1, 2, 4, 8, 16, 32)


def stride_trace(stride_lines: int, count: int = 2048) -> np.ndarray:
    pa = np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)
    return pa % np.uint64(8 * 1024**3)


@pytest.fixture(scope="module")
def results():
    cfg = hbm2_config()
    fast = WindowModel(cfg)
    event = HBMDevice(cfg)
    table = {}
    for stride in STRIDES:
        trace = stride_trace(stride)
        table[stride] = (
            fast.simulate(trace).throughput_gbps,
            event.simulate(trace).throughput_gbps,
        )
    return table


def test_orderings_agree(results):
    fast_order = sorted(STRIDES, key=lambda s: -results[s][0])
    event_order = sorted(STRIDES, key=lambda s: -results[s][1])
    assert fast_order == event_order


@pytest.mark.parametrize("stride", STRIDES)
def test_magnitude_within_band(results, stride):
    fast_gbps, event_gbps = results[stride]
    assert fast_gbps / event_gbps < 2.0
    assert event_gbps / fast_gbps < 2.0


def test_identical_hit_counts_on_uncontended_trace():
    """With in-order access per bank, hit classification must match."""
    cfg = hbm2_config()
    trace = stride_trace(1, 1024)
    fast = WindowModel(cfg).simulate(trace)
    event = HBMDevice(cfg, frfcfs_window=1).simulate(trace)
    assert fast.row_hits == event.row_hits


def test_random_trace_band():
    cfg = hbm2_config()
    rng = np.random.default_rng(9)
    trace = (
        rng.integers(0, cfg.total_bytes, 2048, dtype=np.uint64)
        >> np.uint64(6)
    ) << np.uint64(6)
    fast = WindowModel(cfg).simulate(trace).throughput_gbps
    event = HBMDevice(cfg).simulate(trace).throughput_gbps
    assert 0.5 < fast / event < 2.0


def test_record_gather_band():
    """Aligned-record gathers (the SDAM-critical pattern) also agree."""
    cfg = hbm2_config()
    rng = np.random.default_rng(11)
    records = rng.integers(0, 1 << 15, 2048, dtype=np.uint64)
    trace = records * np.uint64(256)  # 4-line aligned records
    fast = WindowModel(cfg).simulate(trace)
    event = HBMDevice(cfg).simulate(trace)
    assert 0.5 < fast.throughput_gbps / event.throughput_gbps < 2.0
    # Both models agree records collapse onto a quarter of the channels.
    assert fast.channels_touched == event.channels_touched == 8


def test_interleaved_streams_band():
    """Two streams alternating rows in shared banks (batching case).

    This is the widest divergence between the tiers: the fast model
    batches same-row requests within a fixed per-bank window, while the
    event tier only reorders what has actually queued up (its eager
    service keeps queues short).  Both must still recover locality that
    strict in-order service would lose entirely (hit rate 0).
    """
    cfg = hbm2_config()
    a = np.arange(1024, dtype=np.uint64) * np.uint64(64)
    b = a + np.uint64(1 << 20)
    trace = np.stack([a, b], axis=1).reshape(-1)
    fast = WindowModel(cfg).simulate(trace)
    event = HBMDevice(cfg).simulate(trace)
    ratio = fast.throughput_gbps / event.throughput_gbps
    assert 0.5 < ratio < 4.0
    assert fast.row_hit_rate > 0.4
    assert event.row_hit_rate > 0.2  # strict in-order would be 0.0
