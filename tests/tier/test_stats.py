"""Merge laws for :class:`~repro.tier.stats.TierTraffic`, as properties.

The same treatment :class:`~repro.hbm.stats.RemapTraffic` gets in
``tests/hbm/test_merge_properties.py``: identity, associativity,
commutativity, and exact counter conservation, over hypothesis-drawn
instances.  Nanosecond fields are drawn as integer-valued floats so the
laws are about the merge structure, not float associativity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tier.stats import _FIELDS, TierTraffic

counters = st.integers(min_value=0, max_value=10_000)
whole_ns = st.integers(min_value=0, max_value=10**9).map(float)


def _field_strategy(name):
    return whole_ns if name.endswith("_ns") else counters


traffics = st.builds(
    TierTraffic, **{name: _field_strategy(name) for name in _FIELDS}
)


class TestMergeLaws:
    @given(traffics)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, t):
        assert t.merge(TierTraffic.empty()) == t
        assert TierTraffic.empty().merge(t) == t

    @given(traffics, traffics)
    @settings(max_examples=40, deadline=None)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(traffics, traffics, traffics)
    @settings(max_examples=40, deadline=None)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(traffics, traffics)
    @settings(max_examples=40, deadline=None)
    def test_counter_conservation(self, a, b):
        merged = a + b
        for name in _FIELDS:
            assert getattr(merged, name) == getattr(a, name) + getattr(
                b, name
            )

    @given(traffics)
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, t):
        assert TierTraffic.from_dict(t.to_dict()) == t

    def test_foreign_add_not_implemented(self):
        assert TierTraffic().__add__(42) is NotImplemented
        assert TierTraffic().__add__("traffic") is NotImplemented


class TestDerived:
    def test_fractions_empty(self):
        t = TierTraffic()
        assert t.fast_fraction == 0.0
        assert t.trans_hit_rate == 0.0
        assert t.accesses == 0

    def test_derived_values(self):
        t = TierTraffic(
            fast_accesses=3,
            slow_accesses=1,
            promotions=2,
            demotions=1,
            swap_ns=5.0,
            trans_ns=7.0,
            trans_lookups=4,
            trans_hits=1,
        )
        assert t.accesses == 4
        assert t.fast_fraction == 0.75
        assert t.swaps == 3
        assert t.overhead_ns == 12.0
        assert t.trans_hit_rate == 0.25
        assert "75% fast" in t.summary()
