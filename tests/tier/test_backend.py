"""The tiered backend: parity, pressure accounting, degenerate streams.

The anchor property (the PR's acceptance bar): with the slow tier
disabled — fast capacity covers the whole footprint, the default
``TierConfig`` — a tiered machine's results fingerprint bit-identically
to the delegate fast-tier backend on every system family.  Under
pressure, the split must still conserve the exact ``RunStats``
invariants every backend obeys (requests = hits + misses, per-channel
counts sum to requests), and degenerate streams (empty trace,
zero-length chunks, single request) must flow through every policy.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.errors import ConfigError, SimulationError
from repro.hbm.backend import create_backend
from repro.hbm.decode import decode_trace
from repro.hbm.guard import GuardedBackend, TierFactory
from repro.hbm import hbm2_config
from repro.system.config import system_by_key
from repro.system.machine import Machine
from repro.tier.backend import TieredBackend
from repro.tier.policies import available_policies

CONFIG = hbm2_config()
SYSTEMS = ("bs_dm", "bs_bsm", "bs_hm", "sdm_bsm", "sdm_bsm_ml4", "sdm_bsm_ml32")


def _trace(n: int, seed: int = 0, span_bytes: int = 8 * 1024 * 1024):
    rng = np.random.default_rng(seed)
    lines = span_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


def _assert_stats_equal(a, b):
    assert a.requests == b.requests
    assert a.bytes_moved == b.bytes_moved
    assert a.makespan_ns == b.makespan_ns
    assert a.row_hits == b.row_hits
    assert a.row_misses == b.row_misses
    np.testing.assert_array_equal(
        a.per_channel_requests, b.per_channel_requests
    )
    np.testing.assert_array_equal(
        a.per_channel_busy_ns, b.per_channel_busy_ns
    )


class TestDelegateParity:
    @pytest.mark.parametrize("key", SYSTEMS)
    def test_fingerprint_identical_when_slow_tier_disabled(self, key):
        workload = api.mixed_stride_workload()
        fast = Machine(
            system_by_key(key), backend="fast", dl_config=api.QUICK_DL_CONFIG
        ).run(workload)
        tiered = Machine(
            system_by_key(key), backend="tiered", dl_config=api.QUICK_DL_CONFIG
        ).run(workload)
        assert json.dumps(
            tiered.fingerprint(), sort_keys=True
        ) == json.dumps(fast.fingerprint(), sort_keys=True)
        # The tiered run additionally carries its traffic record —
        # outside the fingerprint, all-fast, zero overhead.
        assert tiered.tier_traffic is not None
        assert tiered.tier_traffic.slow_accesses == 0
        assert tiered.tier_traffic.overhead_ns == 0.0
        assert fast.tier_traffic is None

    def test_raw_stats_identical_with_forced_miss(self):
        ha = _trace(4096, seed=3)
        decoded = decode_trace(ha, CONFIG)
        forced = np.zeros(len(decoded), dtype=bool)
        forced[::7] = True
        fast = create_backend("fast", CONFIG, max_inflight=32)
        tiered = TieredBackend(CONFIG, max_inflight=32)
        a = fast.simulate_decoded(decoded, forced_miss=forced)
        b = tiered.simulate_decoded(decoded, forced_miss=forced)
        _assert_stats_equal(a, b)


class TestPressureAccounting:
    def test_stats_invariants_under_pressure(self):
        ha = _trace(8192, seed=1)
        backend = TieredBackend(
            CONFIG, policy="smart", fast_pages=32, wave_accesses=1024
        )
        stats = backend.simulate(ha)
        traffic = backend.last_traffic
        assert stats.requests == 8192
        assert stats.row_hits + stats.row_misses == stats.requests
        assert int(stats.per_channel_requests.sum()) == stats.requests
        assert traffic.fast_accesses + traffic.slow_accesses == 8192
        assert traffic.slow_accesses > 0
        assert traffic.swap_waves == 8
        assert backend.placement.check_invariants() == []

    def test_chunked_equals_whole_trace(self):
        ha = _trace(6144, seed=2)
        whole = TieredBackend(
            CONFIG, policy="smart", fast_pages=64, wave_accesses=512
        ).simulate_decoded(decode_trace(ha, CONFIG))
        pieces = [
            decode_trace(chunk, CONFIG)
            for chunk in np.array_split(ha, 5)
        ]
        chunked = TieredBackend(
            CONFIG, policy="smart", fast_pages=64, wave_accesses=512
        ).simulate_decoded(iter(pieces))
        _assert_stats_equal(whole, chunked)

    def test_all_slow_baseline_times_everything_slow(self):
        ha = _trace(2048, seed=4)
        backend = TieredBackend(CONFIG, policy="slow", fast_pages=0)
        stats = backend.simulate(ha)
        traffic = backend.last_traffic
        assert traffic.fast_accesses == 0
        assert traffic.slow_accesses == 2048
        assert stats.row_hits == 0
        assert stats.row_misses == 2048
        assert stats.makespan_ns >= backend.tier.slow.service_ns(2048)

    def test_forced_miss_rejected_for_chunks_under_pressure(self):
        ha = _trace(1024)
        pieces = [decode_trace(chunk, CONFIG) for chunk in np.array_split(ha, 2)]
        backend = TieredBackend(CONFIG, fast_pages=16)
        with pytest.raises(SimulationError, match="whole DecodedTrace"):
            backend.simulate_decoded(
                iter(pieces), forced_miss=np.zeros(1024, dtype=bool)
            )


class TestDegenerateStreams:
    @pytest.mark.parametrize("policy", available_policies())
    def test_empty_trace(self, policy):
        backend = TieredBackend(
            CONFIG, policy=policy, fast_pages=8, wave_accesses=64
        )
        stats = backend.simulate(np.zeros(0, dtype=np.uint64))
        assert stats.requests == 0
        assert stats.makespan_ns == 0.0
        assert backend.last_traffic.accesses == 0

    @pytest.mark.parametrize("policy", available_policies())
    def test_zero_length_chunks(self, policy):
        empty = decode_trace(np.zeros(0, dtype=np.uint64), CONFIG)
        data = decode_trace(_trace(256, seed=6), CONFIG)
        backend = TieredBackend(
            CONFIG, policy=policy, fast_pages=8, wave_accesses=64
        )
        stats = backend.simulate_decoded(iter([empty, data, empty]))
        assert stats.requests == 256
        assert stats.row_hits + stats.row_misses == 256

    @pytest.mark.parametrize("policy", available_policies())
    def test_single_request(self, policy):
        backend = TieredBackend(
            CONFIG, policy=policy, fast_pages=1, wave_accesses=64
        )
        stats = backend.simulate(
            np.array([CONFIG.line_bytes * 17], dtype=np.uint64)
        )
        assert stats.requests == 1
        assert backend.last_traffic.fast_accesses == 1
        assert backend.placement.check_invariants() == []

    @pytest.mark.parametrize("policy", available_policies())
    def test_empty_chunk_list(self, policy):
        backend = TieredBackend(
            CONFIG, policy=policy, fast_pages=8, wave_accesses=64
        )
        stats = backend.simulate_decoded(iter([]))
        assert stats.requests == 0


class TestRetirement:
    def test_retired_page_pinned_and_never_promoted(self):
        backend = TieredBackend(
            CONFIG, policy="smart", fast_pages=4, wave_accesses=128
        )
        backend.retire_page(5)
        assert backend.last_traffic.retired_pins == 1
        assert backend.placement.tier_of(5) == "slow"
        # Hammer the retired page: hot, but it must stay slow.
        page_bytes = backend.tier.page_bytes
        ha = np.full(1024, 5 * page_bytes, dtype=np.uint64)
        backend.simulate(ha)
        assert backend.placement.tier_of(5) == "slow"
        assert backend.placement.is_pinned(5)
        assert backend.last_traffic.slow_accesses == 1024

    def test_retire_fast_page_demotes_without_shrinking_capacity(self):
        backend = TieredBackend(CONFIG, fast_pages=4, wave_accesses=64)
        backend.placement.admit(1)
        assert backend.placement.tier_of(1) == "fast"
        backend.retire_page(1)
        assert backend.placement.tier_of(1) == "slow"
        assert backend.placement.fast_capacity == 4


class TestConstruction:
    def test_self_delegation_rejected(self):
        with pytest.raises(ConfigError, match="cannot delegate to itself"):
            TieredBackend(CONFIG, delegate="tiered")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown swap policy"):
            TieredBackend(CONFIG, policy="telepathic")

    def test_registry_construction(self):
        backend = create_backend(
            "tiered", CONFIG, max_inflight=16, fast_pages=8
        )
        assert isinstance(backend, TieredBackend)
        assert backend.tier.fast_pages == 8


class TestGuardForwarding:
    def test_guard_forwards_last_traffic(self):
        guarded = GuardedBackend(
            TieredBackend(CONFIG, fast_pages=16, wave_accesses=256),
            primary_factory=TierFactory(
                "tiered", CONFIG, max_inflight=64, fast_pages=16,
                wave_accesses=256,
            ),
            reference_factory=TierFactory(
                "tiered", CONFIG, max_inflight=64, fast_pages=16,
                wave_accesses=256, delegate="event",
            ),
            primary_name="tiered",
            reference_name="tiered:event",
            sample=0.01,
        )
        assert guarded.last_traffic is None or (
            guarded.last_traffic.accesses == 0
        )
        guarded.simulate(_trace(512, seed=8))
        assert guarded.last_traffic is not None
        assert guarded.last_traffic.accesses == 512
