"""Swap-policy behaviour: recency, hysteresis, break-even economics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.tier.config import TierConfig
from repro.tier.placement import TierPlacement
from repro.tier.policies import (
    SmartSwap,
    available_policies,
    create_policy,
)

CONFIG = TierConfig(fast_pages=4, wave_accesses=64)


def _observe(policy, pages, repeats=1):
    """Feed a wave touching ``pages`` (each ``repeats`` times)."""
    tiled = np.repeat(np.asarray(pages, dtype=np.uint64), repeats)
    ha = tiled * np.uint64(CONFIG.page_bytes)
    policy.observe(ha, tiled.astype(np.int64))


class TestRegistry:
    def test_available(self):
        assert available_policies() == ("fast", "slow", "smart")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown swap policy"):
            create_policy("telepathic", CONFIG)


class TestFastSwap:
    def test_promotes_touched_slow_pages_up_to_budget(self):
        policy = create_policy("fast", CONFIG)
        placement = TierPlacement(4)
        for page in range(8):
            placement.admit(page)
        _observe(policy, [4, 5, 6, 7])
        assert policy.plan(placement, budget=2) == [4, 5]

    def test_unbounded_capacity_never_swaps(self):
        policy = create_policy("fast", CONFIG)
        placement = TierPlacement(None)
        placement.admit(1)
        _observe(policy, [1])
        assert policy.plan(placement, budget=8) == []


class TestSlowSwap:
    def test_never_plans(self):
        policy = create_policy("slow", CONFIG)
        placement = TierPlacement(1)
        for page in range(4):
            placement.admit(page)
        _observe(policy, [1, 2, 3], repeats=100)
        assert policy.plan(placement, budget=8) == []


class TestSmartSwap:
    def test_cold_churn_blocked_by_break_even_floor(self):
        policy = create_policy("smart", CONFIG)
        placement = TierPlacement(4)
        for page in range(8):
            placement.admit(page)
        # Slow pages touched once: refs ~1, far below the floor.
        _observe(policy, [4, 5, 6, 7])
        assert policy.refs(4) < policy.min_refs
        assert policy.plan(placement, budget=8) == []

    def test_hot_slow_page_clears_the_bar(self):
        policy = create_policy("smart", CONFIG)
        placement = TierPlacement(4)
        for page in range(8):
            placement.admit(page)
        hot = int(policy.min_refs) * 2 + 8
        _observe(policy, [6], repeats=hot)
        assert policy.refs(6) > policy.min_refs
        plan = policy.plan(placement, budget=8)
        assert plan == [6]

    def test_streaming_tightens_hysteresis(self):
        policy = create_policy("smart", CONFIG)
        # A perfect sequential sweep must trip the BFRV scan signature.
        ha = np.arange(4096, dtype=np.uint64) * np.uint64(64)
        pages = (ha >> np.uint64(CONFIG.page_bits)).astype(np.int64)
        policy.observe(ha, pages)
        assert policy.streaming

    def test_victims_are_coldest_first(self):
        policy = create_policy("smart", CONFIG)
        placement = TierPlacement(4)
        for page in range(4):
            placement.admit(page)
        _observe(policy, [0], repeats=50)
        _observe(policy, [1], repeats=5)
        order = policy.victim_order(placement)
        assert order.index(2) < order.index(0)
        assert order.index(3) < order.index(0)
        assert order.index(1) < order.index(0)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigError, match="hysteresis"):
            SmartSwap(CONFIG, hysteresis=0.5)
        with pytest.raises(ConfigError, match="reuse_horizon"):
            SmartSwap(CONFIG, reuse_horizon=0.0)
