"""The tiered-memory campaign: gates, invariants, side legs."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.sdam import SDAMController
from repro.errors import ConfigError, SimulationError
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.tier.campaign import run_tier_campaign
from repro.tier.swapper import SDAMAwareSwapper


@pytest.fixture(scope="module")
def quick_result():
    return run_tier_campaign(seed=0, quick=True)


class TestCampaign:
    def test_quick_campaign_is_clean(self, quick_result):
        assert quick_result.problems == []
        assert quick_result.ok

    def test_smart_strictly_beats_all_slow(self, quick_result):
        for leg in ("skew", "pressure"):
            assert (
                quick_result.legs[leg]["smart"]
                < quick_result.baseline_ns[leg]
            )
            assert quick_result.speedup(leg) > 1.0

    def test_all_policies_evaluated(self, quick_result):
        for leg in ("skew", "pressure"):
            assert set(quick_result.legs[leg]) == {"fast", "slow", "smart"}
            assert "all-slow" in quick_result.traffic[leg]

    def test_smart_promotes_on_skew_not_on_pressure(self, quick_result):
        assert quick_result.traffic["skew"]["smart"]["promotions"] > 0
        assert quick_result.traffic["pressure"]["smart"]["promotions"] == 0

    def test_sdam_leg_rolled_back_then_remapped(self, quick_result):
        assert quick_result.sdam["rollback_ok"]
        assert quick_result.sdam["rollbacks"] == 1
        assert quick_result.sdam["remaps"] == 1
        assert quick_result.sdam["lines_copied"] > 0

    def test_ras_leg_pins_without_shrinking_fast(self, quick_result):
        assert quick_result.ras["retired"] == 4
        assert quick_result.ras["capacity_ok"]
        assert quick_result.ras["never_promoted"]

    def test_fingerprint_deterministic(self, quick_result):
        again = run_tier_campaign(seed=0, quick=True)
        assert again.fingerprint() == quick_result.fingerprint()

    def test_single_policy_restriction(self):
        result = run_tier_campaign(seed=0, quick=True, policy="slow")
        assert result.policies == ["slow"]
        for leg in result.legs.values():
            assert set(leg) == {"slow"}
        # No smart run -> no speed gate; invariants still checked.
        assert result.ok

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown swap policy"):
            run_tier_campaign(policy="telepathic")


class TestSwapper:
    def _stack(self):
        geometry = ChunkGeometry(total_bytes=32 * MiB)
        kernel = Kernel(geometry, sdam=SDAMController(geometry))
        space = kernel.spawn()
        malloc = MappingAwareAllocator(kernel, space)
        swapper = SDAMAwareSwapper(kernel)
        mapping = malloc.add_addr_map(
            np.roll(np.arange(geometry.window_bits), 3)
        )
        va = malloc.malloc(1 * MiB, mapping_id=0, tag="data")
        touch = np.arange(
            va, va + 1 * MiB, geometry.page_bytes, dtype=np.uint64
        )
        space.translate_trace(touch)
        chunk_no = geometry.chunk_number(space.translate(va))
        return swapper, chunk_no, mapping

    def test_clean_swap_accounts_traffic(self):
        swapper, chunk_no, mapping = self._stack()
        report = swapper.swap_chunk(chunk_no, mapping)
        assert swapper.mapping_index_of(chunk_no) == mapping
        assert swapper.traffic.sdam_remaps == 1
        assert swapper.traffic.sdam_rollbacks == 0
        assert swapper.traffic.swap_bytes == (
            2 * report.lines_copied * swapper.migrator.hbm.line_bytes
        )
        assert swapper.traffic.swap_ns == report.cost_ns

    def test_mid_copy_fault_rolls_back_cmt(self):
        swapper, chunk_no, mapping = self._stack()
        before = swapper.mapping_index_of(chunk_no)

        def exploding(_lines, _reads, _writes):
            raise SimulationError("device fault mid-copy")

        with pytest.raises(SimulationError):
            swapper.swap_chunk(chunk_no, mapping, on_copy=exploding)
        assert swapper.mapping_index_of(chunk_no) == before
        assert swapper.traffic.sdam_rollbacks == 1
        assert swapper.traffic.sdam_remaps == 0
