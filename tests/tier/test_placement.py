"""Conservation properties of the tier placement map.

The acceptance property: after an *arbitrary* sequence of admissions,
promotions, demotions, and RAS retirements, every admitted page lives
in exactly one tier, the fast tier respects its capacity, and retired
pages are pinned slow.  Operations that would violate an invariant
raise instead of corrupting the map, so the property is driven with
op sequences that include illegal requests and asserts the invariants
survive the rejections.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.tier.placement import TierPlacement

pages = st.integers(min_value=0, max_value=63)
ops = st.lists(
    st.tuples(
        st.sampled_from(["admit", "promote", "demote", "retire"]), pages
    ),
    max_size=200,
)


class TestProperties:
    @given(
        ops, st.one_of(st.none(), st.integers(min_value=0, max_value=16))
    )
    @settings(max_examples=100, deadline=None)
    def test_every_page_in_exactly_one_tier(self, sequence, capacity):
        placement = TierPlacement(capacity)
        touched = set()
        for op, page in sequence:
            touched.add(page)
            try:
                if op == "admit":
                    placement.admit(page)
                elif op == "promote":
                    placement.promote(page)
                elif op == "demote":
                    placement.demote(page)
                else:
                    placement.pin_slow(page)
            except SimulationError:
                pass  # Illegal transition rejected; map must stay whole.
            assert placement.check_invariants() == []
        # Retire ops admit straight to slow, so known <= touched always.
        assert placement.known <= touched
        assert placement.fast.isdisjoint(placement.slow)
        assert placement.pinned <= placement.slow

    @given(ops)
    @settings(max_examples=50, deadline=None)
    def test_admit_is_total_and_conserving(self, sequence):
        placement = TierPlacement(8)
        admitted = set()
        for _op, page in sequence:
            placement.admit(page)
            admitted.add(page)
            assert placement.check_invariants(expected=admitted) == []
        assert placement.known == admitted


class TestTransitions:
    def test_admit_fast_until_full_then_slow(self):
        placement = TierPlacement(2)
        assert placement.admit(1) == "fast"
        assert placement.admit(2) == "fast"
        assert placement.admit(3) == "slow"
        assert placement.admit(1) == "fast"  # idempotent

    def test_unbounded_always_fast(self):
        placement = TierPlacement(None)
        for page in range(100):
            assert placement.admit(page) == "fast"
        assert placement.fast_free is None
        assert not placement.slow

    def test_promote_requires_room(self):
        placement = TierPlacement(1)
        placement.admit(1)
        placement.admit(2)
        with pytest.raises(SimulationError, match="fast tier full"):
            placement.promote(2)
        placement.demote(1)
        placement.promote(2)
        assert placement.tier_of(2) == "fast"
        assert placement.tier_of(1) == "slow"

    def test_pinned_page_cannot_be_promoted(self):
        placement = TierPlacement(4)
        placement.admit(7)
        assert placement.pin_slow(7) is True
        assert placement.pin_slow(7) is False
        assert placement.tier_of(7) == "slow"
        with pytest.raises(SimulationError, match="retired"):
            placement.promote(7)

    def test_retire_unknown_page_lands_slow(self):
        placement = TierPlacement(4)
        assert placement.pin_slow(9) is True
        assert placement.tier_of(9) == "slow"
        assert placement.is_pinned(9)

    def test_lost_and_invented_pages_reported(self):
        placement = TierPlacement(4)
        placement.admit(1)
        problems = placement.check_invariants(expected={1, 2})
        assert any("lost" in p for p in problems)
        problems = placement.check_invariants(expected=set())
        assert any("invented" in p for p in problems)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            TierPlacement(-1)
