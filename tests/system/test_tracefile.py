"""Tests for trace and profile persistence."""

import numpy as np
import pytest

from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.system.machine import Machine
from repro.system.config import system_by_key
from repro.system.tracefile import (
    load_profile,
    load_trace,
    save_profile,
    save_trace,
)
from repro.core.selection import select_mappings_kmeans
from repro.workloads import MixedStrideWorkload


class TestTraceRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = AccessTrace(
            va=np.array([64, 128, 192], dtype=np.uint64),
            is_write=np.array([True, False, True]),
            variable=np.array([0, 1, 0]),
        )
        path = save_trace(tmp_path / "trace.npz", trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.va, trace.va)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)
        np.testing.assert_array_equal(loaded.variable, trace.variable)

    def test_empty_trace(self, tmp_path):
        trace = AccessTrace(va=np.zeros(0, dtype=np.uint64))
        loaded = load_trace(save_trace(tmp_path / "empty.npz", trace))
        assert len(loaded) == 0

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, format=np.int64(999), va=np.zeros(1, dtype=np.uint64),
                 is_write=np.zeros(1, dtype=bool), variable=np.zeros(1))
        with pytest.raises(ProfilingError):
            load_trace(path)


class TestProfileRoundtrip:
    def test_offline_profile_reuse(self, tmp_path):
        """Profile once, persist, select mappings from the loaded copy."""
        workload = MixedStrideWorkload(
            strides=(1, 16), accesses_per_stride=1500
        )
        machine = Machine(system_by_key("bs_dm"))
        profile = machine.profile(workload)
        path = save_profile(tmp_path / "profile.npz", profile)
        loaded = load_profile(path)
        assert loaded.name == profile.name
        assert loaded.total_references == profile.total_references
        assert loaded.num_variables == profile.num_variables
        # The loaded profile drives mapping selection identically.
        original = select_mappings_kmeans(
            profile, 2, machine.layout, machine.geometry, coverage=1.0
        )
        reloaded = select_mappings_kmeans(
            loaded, 2, machine.layout, machine.geometry, coverage=1.0
        )
        assert [p.tolist() for p in original.window_perms] == [
            p.tolist() for p in reloaded.window_perms
        ]

    def test_sub_traces_preserved(self, tmp_path):
        workload = MixedStrideWorkload(
            strides=(4,), accesses_per_stride=800
        )
        machine = Machine(system_by_key("bs_dm"))
        profile = machine.profile(workload)
        loaded = load_profile(save_profile(tmp_path / "p.npz", profile))
        for original, restored in zip(profile.profiles, loaded.profiles):
            assert original.name == restored.name
            np.testing.assert_array_equal(
                original.addresses, restored.addresses
            )


class TestStageStoreSelfHealing:
    """The checksummed, quarantining store behind the experiment engine."""

    @staticmethod
    def _store(tmp_path):
        from repro.system.tracefile import StageStore

        return StageStore(tmp_path / "cache")

    def test_store_writes_checksum_sidecar(self, tmp_path):
        store = self._store(tmp_path)
        store.store_result("k1", {"answer": 42})
        blob = store.root / "result" / "k1.json"
        sidecar = store.root / "result" / "k1.json.sha256"
        assert blob.exists() and sidecar.exists()
        import hashlib

        assert (
            sidecar.read_text().strip()
            == hashlib.sha256(blob.read_bytes()).hexdigest()
        )
        assert store.load_result("k1") == {"answer": 42}

    def test_corrupt_entry_is_quarantined_not_raised(self, tmp_path):
        store = self._store(tmp_path)
        store.store_result("k1", {"answer": 42})
        blob = store.root / "result" / "k1.json"
        blob.write_bytes(b'{"answer": 4')  # torn write
        assert store.load_result("k1") is None
        assert not blob.exists()
        qdir = store.root / "quarantine" / "result"
        assert (qdir / "k1.json").exists()
        assert (qdir / "k1.json.sha256").exists()
        reason = (qdir / "k1.json.reason").read_text()
        assert "CacheCorruptionError" in reason
        assert store.corruptions["result"] == 1
        # The key is a plain miss afterwards, and re-storing heals it.
        store.store_result("k1", {"answer": 42})
        assert store.load_result("k1") == {"answer": 42}

    def test_undecodable_npz_is_quarantined(self, tmp_path):
        store = self._store(tmp_path)
        # A legacy entry without a sidecar whose decoder rejects it.
        target = store.root / "profile" / "bad.npz"
        target.parent.mkdir(parents=True)
        target.write_bytes(b"not an npz archive")
        assert store.load_profile("bad") is None
        assert (store.root / "quarantine" / "profile" / "bad.npz").exists()

    def test_sidecar_backfilled_for_legacy_entries(self, tmp_path):
        import json

        store = self._store(tmp_path)
        target = store.root / "result" / "legacy.json"
        target.parent.mkdir(parents=True)
        target.write_text(json.dumps({"ok": True}))
        assert store.load_result("legacy") == {"ok": True}
        assert (store.root / "result" / "legacy.json.sha256").exists()

    def test_verify_reports_and_quarantines(self, tmp_path):
        store = self._store(tmp_path)
        store.store_result("good", {"ok": True})
        store.store_result("bad", {"ok": False})
        (store.root / "result" / "bad.json").write_text("{broken")
        report = store.verify()
        assert report["result"]["checked"] == 2
        assert report["result"]["ok"] == 1
        assert report["result"]["quarantined"] == ["bad.json"]
        # A second verify sees only the healthy entry.
        assert store.verify()["result"] == {
            "checked": 1,
            "ok": 1,
            "quarantined": [],
        }

    def test_gc_sweeps_debris(self, tmp_path):
        store = self._store(tmp_path)
        store.store_result("keep", {"ok": True})
        rdir = store.root / "result"
        (rdir / ".tmp-123-0-x.json").write_text("crashed writer")
        (rdir / "orphan.json.sha256").write_text("feed" * 16 + "\n")
        store.store_result("doomed", {"ok": False})
        (rdir / "doomed.json").write_text("{")
        assert store.load_result("doomed") is None  # quarantined
        removed = store.gc(purge_quarantine=True)
        assert removed["tmp"] == 1
        assert removed["orphan_sidecars"] == 1
        assert removed["quarantined"] == 3  # blob + sidecar + reason
        assert store.load_result("keep") == {"ok": True}
        assert not list(store.root.glob("quarantine/**/*.json"))

    def test_concurrent_same_key_writes_are_collision_free(self, tmp_path):
        """Threads racing on one key never tear a published entry."""
        import threading

        store = self._store(tmp_path)
        payload = {"answer": 42, "blob": "x" * 4096}
        errors = []

        def write():
            try:
                for _ in range(20):
                    store.store_result("contested", payload)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.load_result("contested") == payload
        assert store.verify()["result"]["quarantined"] == []
        # No tmp debris left behind either.
        assert not list(store.root.glob("*/.tmp-*"))

    def test_counters_track_hits_misses_corruptions(self, tmp_path):
        store = self._store(tmp_path)
        assert store.load_result("absent") is None
        store.store_result("k", {"v": 1})
        store.load_result("k")
        (store.root / "result" / "k.json").write_text("{")
        store.load_result("k")
        counters = store.counters()["result"]
        assert counters == {"hits": 1, "misses": 2, "corruptions": 1}
