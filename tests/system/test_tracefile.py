"""Tests for trace and profile persistence."""

import numpy as np
import pytest

from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.system.machine import Machine
from repro.system.config import system_by_key
from repro.system.tracefile import (
    load_profile,
    load_trace,
    save_profile,
    save_trace,
)
from repro.core.selection import select_mappings_kmeans
from repro.workloads import MixedStrideWorkload


class TestTraceRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = AccessTrace(
            va=np.array([64, 128, 192], dtype=np.uint64),
            is_write=np.array([True, False, True]),
            variable=np.array([0, 1, 0]),
        )
        path = save_trace(tmp_path / "trace.npz", trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.va, trace.va)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)
        np.testing.assert_array_equal(loaded.variable, trace.variable)

    def test_empty_trace(self, tmp_path):
        trace = AccessTrace(va=np.zeros(0, dtype=np.uint64))
        loaded = load_trace(save_trace(tmp_path / "empty.npz", trace))
        assert len(loaded) == 0

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, format=np.int64(999), va=np.zeros(1, dtype=np.uint64),
                 is_write=np.zeros(1, dtype=bool), variable=np.zeros(1))
        with pytest.raises(ProfilingError):
            load_trace(path)


class TestProfileRoundtrip:
    def test_offline_profile_reuse(self, tmp_path):
        """Profile once, persist, select mappings from the loaded copy."""
        workload = MixedStrideWorkload(
            strides=(1, 16), accesses_per_stride=1500
        )
        machine = Machine(system_by_key("bs_dm"))
        profile = machine.profile(workload)
        path = save_profile(tmp_path / "profile.npz", profile)
        loaded = load_profile(path)
        assert loaded.name == profile.name
        assert loaded.total_references == profile.total_references
        assert loaded.num_variables == profile.num_variables
        # The loaded profile drives mapping selection identically.
        original = select_mappings_kmeans(
            profile, 2, machine.layout, machine.geometry, coverage=1.0
        )
        reloaded = select_mappings_kmeans(
            loaded, 2, machine.layout, machine.geometry, coverage=1.0
        )
        assert [p.tolist() for p in original.window_perms] == [
            p.tolist() for p in reloaded.window_perms
        ]

    def test_sub_traces_preserved(self, tmp_path):
        workload = MixedStrideWorkload(
            strides=(4,), accesses_per_stride=800
        )
        machine = Machine(system_by_key("bs_dm"))
        profile = machine.profile(workload)
        loaded = load_profile(save_profile(tmp_path / "p.npz", profile))
        for original, restored in zip(profile.profiles, loaded.profiles):
            assert original.name == restored.name
            np.testing.assert_array_equal(
                original.addresses, restored.addresses
            )
