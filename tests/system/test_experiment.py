"""Tests for the experiment drivers and reporting."""

import pytest

from repro.errors import ConfigError
from repro.system.config import system_by_key
from repro.system.experiment import SpeedupTable, run_suite
from repro.system.machine import MachineResult
from repro.system.reporting import format_series, format_table
from repro.workloads.synthetic import MixedStrideWorkload


def fake_result(workload: str, system: str, time_us: float) -> MachineResult:
    from repro.hbm.stats import RunStats
    import numpy as np

    stats = RunStats(
        requests=1,
        bytes_moved=64,
        makespan_ns=time_us * 1000,
        row_hits=0,
        row_misses=1,
        num_channels=32,
        per_channel_requests=np.zeros(32, dtype=np.int64),
        per_channel_busy_ns=np.zeros(32),
    )
    return MachineResult(
        workload=workload,
        system=system,
        stats=stats,
        external=None,
        selection=None,
        compute_ns=0.0,
    )


class TestSpeedupTable:
    def make_table(self) -> SpeedupTable:
        table = SpeedupTable(baseline_label="BS+DM")
        table.add(fake_result("a", "BS+DM", 100))
        table.add(fake_result("a", "SDM", 50))
        table.add(fake_result("b", "BS+DM", 100))
        table.add(fake_result("b", "SDM", 25))
        return table

    def test_speedup(self):
        table = self.make_table()
        assert table.speedup("a", "SDM") == pytest.approx(2.0)
        assert table.speedup("b", "SDM") == pytest.approx(4.0)

    def test_geomean(self):
        table = self.make_table()
        assert table.geomean("SDM") == pytest.approx((2 * 4) ** 0.5)

    def test_missing_system(self):
        table = self.make_table()
        with pytest.raises(ConfigError):
            table.geomean("GHOST")

    def test_rows(self):
        rows = self.make_table().to_rows()
        assert len(rows) == 2
        assert rows[0]["workload"] == "a"


class TestRunSuite:
    def test_small_suite(self):
        workloads = [MixedStrideWorkload(strides=(1, 16), accesses_per_stride=1500)]
        systems = [system_by_key("bs_dm"), system_by_key("bs_hm")]
        table = run_suite(workloads, systems=systems)
        assert table.speedup(workloads[0].name, "BS+HM") > 1.0

    def test_no_workloads(self):
        with pytest.raises(ConfigError):
            run_suite([], systems=[system_by_key("bs_dm")])


class TestReporting:
    def test_format_table_aligned(self):
        text = format_table(
            [{"w": "bfs", "s": 1.5}, {"w": "pagerank", "s": 2.25}],
            title="speedups",
        )
        lines = text.splitlines()
        assert lines[0] == "speedups"
        assert "bfs" in text and "2.25" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series({1.0: 1.2, 0.25: 1.5}, "scale", "speedup")
        assert "scale" in text and "1.50" in text
