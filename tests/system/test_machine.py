"""Integration tests for the full machine pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ml.dlkmeans import AutoencoderConfig
from repro.system.config import system_by_key
from repro.system.machine import Machine
from repro.workloads.synthetic import MixedStrideWorkload, StridedCopyWorkload

FAST_DL = AutoencoderConfig(
    pretrain_steps=20, joint_steps=10, hidden_dim=16, delta_embed_dim=8
)

SMALL = dict(accesses_per_stride=2000)


@pytest.fixture(scope="module")
def mixed_results():
    """Run the mixed-stride workload under four systems once."""
    workload = MixedStrideWorkload(strides=(1, 16), **SMALL)
    out = {}
    for key in ("bs_dm", "bs_hm", "sdm_bsm", "sdm_bsm_ml4"):
        machine = Machine(system_by_key(key), dl_config=FAST_DL)
        out[key] = machine.run(workload)
    return out


class TestPipeline:
    def test_baseline_runs(self, mixed_results):
        result = mixed_results["bs_dm"]
        assert result.stats.requests > 0
        assert result.time_ns > 0
        assert result.selection is None

    def test_sdam_selection_recorded(self, mixed_results):
        result = mixed_results["sdm_bsm_ml4"]
        assert result.selection is not None
        assert result.selection.num_mappings >= 1
        assert result.profiling_seconds > 0

    def test_sdam_beats_baseline_on_mixed_strides(self, mixed_results):
        assert (
            mixed_results["sdm_bsm_ml4"].time_ns
            < mixed_results["bs_dm"].time_ns
        )

    def test_hash_beats_default(self, mixed_results):
        assert mixed_results["bs_hm"].time_ns < mixed_results["bs_dm"].time_ns

    def test_summary_readable(self, mixed_results):
        text = mixed_results["bs_dm"].summary()
        assert "GB/s" in text


class TestProfileAPI:
    def test_profile_returns_per_variable_traces(self):
        workload = StridedCopyWorkload(stride_lines=4, accesses_per_thread=1000)
        machine = Machine(system_by_key("bs_dm"))
        profile = machine.profile(workload)
        assert profile.num_variables == 2
        assert profile.total_references > 0

    def test_profiled_addresses_are_physical(self):
        workload = StridedCopyWorkload(stride_lines=1, accesses_per_thread=1000)
        machine = Machine(system_by_key("bs_dm"))
        profile = machine.profile(workload)
        top = profile.profiles[0]
        machine.geometry.check_address(np.asarray(top.addresses))


class TestEngines:
    def test_accelerator_engine(self):
        workload = MixedStrideWorkload(strides=(1, 16), **SMALL)
        machine = Machine(system_by_key("bs_dm"), engine="accelerator")
        result = machine.run(workload)
        # Accelerators filter less: more external accesses per program access.
        cpu_result = Machine(system_by_key("bs_dm")).run(workload)
        assert (
            result.external.miss_fraction >= cpu_result.external.miss_fraction
        )

    def test_unknown_engine(self):
        with pytest.raises(ConfigError):
            Machine(system_by_key("bs_dm"), engine="gpu")

    def test_unknown_memory_model(self):
        with pytest.raises(ConfigError):
            Machine(system_by_key("bs_dm"), memory_model="exact")

    def test_event_model_runs(self):
        workload = MixedStrideWorkload(strides=(1, 16), accesses_per_stride=500)
        machine = Machine(system_by_key("bs_dm"), memory_model="event")
        result = machine.run(workload)
        assert result.stats.requests > 0


class TestCrossValidation:
    def test_profile_and_eval_inputs_differ_but_speedup_holds(self):
        """Section 7.4: different inputs for profiling and evaluation."""
        workload = MixedStrideWorkload(strides=(1, 16), **SMALL)
        baseline = Machine(system_by_key("bs_dm")).run(
            workload, profile_seed=0, eval_seed=3
        )
        sdam = Machine(system_by_key("sdm_bsm_ml4")).run(
            workload, profile_seed=0, eval_seed=3
        )
        assert sdam.time_ns < baseline.time_ns
