"""Tests for the fault-tolerance layer of the experiment engine.

The contract under test: a deterministic :class:`FaultPlan` can break
the engine at every named site — corrupt cache entries, crashing
workers, stalled cells, broken pools — and the engine converges to the
same results a fault-free sweep produces, recomputing only what the
faults destroyed.
"""

import json

import pytest

from repro.errors import (
    CacheCorruptionError,
    ConfigError,
    RetryExhaustedError,
    WorkerCrashError,
)
from repro.faults import KNOWN_SITES, FaultPlan, FaultSpec, matches_known_site
from repro.system import ExperimentRunner, RetryPolicy, system_by_key
from repro.system.runner import CellError
from repro.workloads import MixedStrideWorkload, StridedCopyWorkload


def small_workloads():
    return [
        MixedStrideWorkload(strides=(1, 16), accesses_per_stride=600),
        StridedCopyWorkload(stride_lines=8, accesses_per_thread=600),
    ]


def small_systems():
    return [system_by_key("bs_dm"), system_by_key("sdm_bsm")]


@pytest.fixture(scope="module")
def clean_fingerprint():
    """The fault-free reference sweep (computed once per module)."""
    suite = ExperimentRunner().run_suite(
        small_workloads(), systems=small_systems()
    )
    assert not suite.errors
    return suite.table.fingerprint()


class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="store.load.result", kind="corrupt", times=2),
                FaultSpec(site="worker.*", kind="stall", seconds=1.5),
            ),
            seed=7,
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan

    def test_env_hook_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            json.dumps({"specs": [{"site": "worker.evaluate"}]}),
        )
        plan = FaultPlan.from_env()
        assert plan is not None and plan.specs[0].site == "worker.evaluate"

    def test_env_hook_file_path_and_bare_list(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"site": "store.load.*", "kind": "corrupt"}]))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        plan = FaultPlan.from_env()
        assert plan is not None and plan.specs[0].kind == "corrupt"

    def test_env_hook_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None

    def test_rejects_unknown_kind_and_site(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="worker.evaluate", kind="meltdown")
        with pytest.raises(ConfigError):
            FaultSpec(site="worker.nonsense")
        assert matches_known_site("worker.*")
        assert all(matches_known_site(site) for site in KNOWN_SITES)

    def test_never_fires_on_retries(self):
        plan = FaultPlan.single("worker.evaluate", times=99)
        assert plan.should_fire("worker.evaluate", "w:s", attempt=2) is None
        assert plan.should_fire("worker.evaluate", "w:s", attempt=1) is not None

    def test_times_budget_in_process(self):
        plan = FaultPlan.single("worker.evaluate", times=2)
        fired = [
            plan.should_fire("worker.evaluate", f"w{i}:s") is not None
            for i in range(4)
        ]
        assert fired == [True, True, False, False]

    def test_ledger_counts_across_plan_instances(self, tmp_path):
        spec = dict(site="worker.evaluate", times=1)
        first = FaultPlan.single(**spec).with_ledger(tmp_path / "ledger")
        second = FaultPlan.single(**spec).with_ledger(tmp_path / "ledger")
        assert first.should_fire("worker.evaluate", "w:s") is not None
        assert second.should_fire("worker.evaluate", "w:s") is None

    def test_probability_is_seed_deterministic(self):
        def firing(seed):
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.evaluate", probability=0.5, times=1000
                    ),
                ),
                seed=seed,
            )
            return [
                plan.should_fire("worker.evaluate", f"w{i}:s") is not None
                for i in range(40)
            ]

        assert firing(3) == firing(3)
        assert firing(3) != firing(4)
        assert any(firing(3)) and not all(firing(3))

    def test_raise_kind_raises_worker_crash(self):
        plan = FaultPlan.single("worker.evaluate")
        with pytest.raises(WorkerCrashError):
            plan.inject("worker.evaluate", "w:s")

    def test_break_pool_degrades_to_raise_outside_workers(self):
        plan = FaultPlan.single("worker.evaluate", kind="break-pool")
        with pytest.raises(WorkerCrashError):
            plan.inject("worker.evaluate", "w:s", allow_exit=False)


class TestCorruptCacheSite:
    def test_corrupt_result_heals_to_identical_sweep(
        self, tmp_path, clean_fingerprint
    ):
        workloads, systems = small_workloads(), small_systems()
        warm = ExperimentRunner(cache_dir=tmp_path).run_suite(
            workloads, systems=systems
        )
        assert not warm.errors

        plan = FaultPlan.single("store.load.result", kind="corrupt", times=1)
        runner = ExperimentRunner(cache_dir=tmp_path, faults=plan)
        healed = runner.run_suite(workloads, systems=systems)
        assert not healed.errors
        assert healed.table.fingerprint() == clean_fingerprint
        # Exactly the corrupted cell recomputed; the rest were hits.
        assert healed.metrics["evaluate"].cache_misses == 1
        assert runner.store.corruptions["result"] == 1
        quarantined = list((tmp_path / "quarantine" / "result").glob("*.json"))
        assert len(quarantined) == 1

    def test_corrupt_profile_heals_to_identical_sweep(
        self, tmp_path, clean_fingerprint
    ):
        workloads, systems = small_workloads(), small_systems()
        assert not ExperimentRunner(cache_dir=tmp_path).run_suite(
            workloads, systems=systems
        ).errors
        # Drop results and selections so the profile gets re-read (a
        # cached selection would satisfy the cell without a profile).
        for kind in ("result", "selection"):
            for blob in (tmp_path / kind).iterdir():
                blob.unlink()

        plan = FaultPlan.single("store.load.profile", kind="corrupt", times=1)
        runner = ExperimentRunner(cache_dir=tmp_path, faults=plan)
        healed = runner.run_suite(workloads, systems=systems)
        assert not healed.errors
        assert healed.table.fingerprint() == clean_fingerprint
        assert runner.store.corruptions["profile"] == 1


class TestWorkerCrashSite:
    def test_injected_raise_is_retried_to_success(self, clean_fingerprint):
        plan = FaultPlan.single("worker.evaluate", kind="raise", times=1)
        suite = ExperimentRunner(faults=plan).run_suite(
            small_workloads(), systems=small_systems()
        )
        assert not suite.errors
        assert suite.table.fingerprint() == clean_fingerprint

    def test_exhausted_retries_record_the_error(self):
        plan = FaultPlan.single("worker.evaluate", kind="raise", times=1)
        suite = ExperimentRunner(
            faults=plan, retry_policy=RetryPolicy.none()
        ).run_suite(small_workloads(), systems=small_systems())
        assert len(suite.errors) == 1
        error = suite.errors[0]
        assert error.error_type == "WorkerCrashError"
        assert error.attempts == 1

    def test_run_one_retries_and_raises_when_exhausted(self):
        workload = small_workloads()[0]
        plan = FaultPlan.single("worker.evaluate", kind="raise", times=1)
        result = ExperimentRunner(faults=plan).run_one(
            workload, system_by_key("bs_dm")
        )
        assert result.time_ns > 0
        # times=2 with a single attempt allowed: retryable but exhausted.
        plan = FaultPlan.single("worker.evaluate", kind="raise", times=2)
        with pytest.raises(RetryExhaustedError):
            ExperimentRunner(
                faults=plan, retry_policy=RetryPolicy.none()
            ).run_one(workload, system_by_key("bs_dm"))


class TestPoolBreakSite:
    def test_broken_pool_degrades_to_serial_and_completes(
        self, clean_fingerprint
    ):
        plan = FaultPlan.single("worker.evaluate", kind="break-pool", times=1)
        suite = ExperimentRunner(max_workers=2, faults=plan).run_suite(
            small_workloads(), systems=small_systems()
        )
        assert suite.degraded
        assert not suite.errors
        assert suite.table.fingerprint() == clean_fingerprint


class TestTimeoutSite:
    def test_stalled_cell_is_recorded_as_timeout(self):
        workloads, systems = small_workloads(), small_systems()
        stalled = f"{workloads[1].name}:{systems[0].key}"
        plan = FaultPlan.single(
            "worker.evaluate", kind="stall", seconds=8.0, match=stalled
        )
        suite = ExperimentRunner(
            max_workers=2, cell_timeout=1.5, faults=plan
        ).run_suite(workloads, systems=systems)
        assert len(suite.errors) == 1
        error = suite.errors[0]
        assert error.error_type == "CellTimeout"
        assert "timeout" in error.message
        assert (error.workload, error.system) == (
            workloads[1].name,
            systems[0].key,
        )


class TestResume:
    def test_failed_sweep_resumes_without_recomputing_healthy_cells(
        self, tmp_path, clean_fingerprint
    ):
        workloads, systems = small_workloads(), small_systems()
        plan = FaultPlan.single("worker.evaluate", kind="raise", times=1)
        broken = ExperimentRunner(
            cache_dir=tmp_path, faults=plan, retry_policy=RetryPolicy.none()
        ).run_suite(workloads, systems=systems)
        assert len(broken.errors) == 1

        runner = ExperimentRunner(cache_dir=tmp_path)
        resumed = runner.run_suite(workloads, systems=systems, resume=True)
        assert resumed.resumed
        assert not resumed.errors
        assert resumed.table.fingerprint() == clean_fingerprint
        # Only the previously failed cell recomputed.
        assert resumed.metrics["evaluate"].cache_misses == 1
        cells = len(workloads) * len(systems)
        assert resumed.metrics["evaluate"].cache_hits == cells - 1

    def test_manifest_records_outcomes(self, tmp_path):
        workloads, systems = small_workloads(), small_systems()
        plan = FaultPlan.single("worker.evaluate", kind="raise", times=1)
        runner = ExperimentRunner(
            cache_dir=tmp_path, faults=plan, retry_policy=RetryPolicy.none()
        )
        runner.run_suite(workloads, systems=systems)
        manifests = list((tmp_path / "sweep").glob("*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        statuses = sorted(
            cell["status"] for cell in manifest["cells"].values()
        )
        assert statuses.count("error") == 1
        assert statuses.count("ok") == len(workloads) * len(systems) - 1
        assert manifest["completed"] is False
        failed = next(
            cell
            for cell in manifest["cells"].values()
            if cell["status"] == "error"
        )
        assert failed["error"]["error_type"] == "WorkerCrashError"


class TestAcceptanceScenario:
    """The ISSUE's acceptance sweep: corrupt + crash + stall in one run."""

    def test_three_faults_converge_and_resume_finishes(self, tmp_path):
        workloads = small_workloads() + [
            StridedCopyWorkload(stride_lines=4, accesses_per_thread=600)
        ]
        systems = [
            system_by_key("bs_dm"),
            system_by_key("bs_hm"),
            system_by_key("sdm_bsm"),
        ]
        clean = ExperimentRunner(cache_dir=tmp_path).run_suite(
            workloads, systems=systems
        )
        assert not clean.errors
        reference = clean.table.fingerprint()

        # Cells 0..2 (workload 0 under every system) lose their cached
        # results; of those, one recompute crashes once and one stalls
        # past the timeout.
        tokens = [f"{workloads[0].name}:{s.key}" for s in systems]
        plan = FaultPlan(
            specs=(
                FaultSpec(site="store.load.result", kind="corrupt", times=3),
                FaultSpec(
                    site="worker.evaluate", kind="raise", match=tokens[1]
                ),
                FaultSpec(
                    site="worker.evaluate",
                    kind="stall",
                    seconds=10.0,
                    match=tokens[2],
                ),
            )
        )
        faulty = ExperimentRunner(
            cache_dir=tmp_path, max_workers=2, cell_timeout=2.0, faults=plan
        ).run_suite(workloads, systems=systems)

        # Only the timed-out cell may appear in errors...
        assert [
            (e.workload, e.system, e.error_type) for e in faulty.errors
        ] == [(workloads[0].name, systems[2].key, "CellTimeout")]
        # ...and every completed cell is bit-identical to the clean run.
        fingerprint = faulty.table.fingerprint()
        for workload, row in fingerprint["results"].items():
            for system, cell in row.items():
                assert cell == reference["results"][workload][system]

        # The same plan resumes against the same ledger: every fault
        # budget is spent, so the sweep completes with zero
        # recomputation of healthy cells.
        resumed = ExperimentRunner(
            cache_dir=tmp_path, max_workers=2, cell_timeout=2.0, faults=plan
        ).run_suite(workloads, systems=systems, resume=True)
        assert resumed.resumed
        assert not resumed.errors
        assert resumed.table.fingerprint() == reference
        assert resumed.metrics["evaluate"].cache_misses == 1


class TestCellErrorTolerance:
    def test_from_dict_tolerates_missing_and_extra_keys(self):
        old_manifest_entry = {
            "workload": "w",
            "system": "s",
            "stage": "evaluate",
            "message": "boom",
        }
        error = CellError.from_dict(old_manifest_entry)
        assert error.error_type == "" and error.attempts == 1

        future_entry = dict(
            old_manifest_entry, attempts=4, error_type="OSError", galaxy="m31"
        )
        error = CellError.from_dict(future_entry)
        assert error.attempts == 4 and error.error_type == "OSError"

        sparse = CellError.from_dict({"message": "?"})
        assert sparse.workload == "?" and sparse.stage == "evaluate"


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=3.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.3)
        assert policy.delay(3) == pytest.approx(0.9)

    def test_should_retry_classifies(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry("WorkerCrashError", 1)
        assert not policy.should_retry("WorkerCrashError", 2)
        assert not policy.should_retry("RuntimeError", 1)
        assert not policy.should_retry(None, 1)
        assert not RetryPolicy.none().should_retry("WorkerCrashError", 1)


class TestErrorHierarchy:
    def test_new_errors_are_repro_errors(self):
        from repro.errors import ReproError

        for exc in (CacheCorruptionError, RetryExhaustedError, WorkerCrashError):
            assert issubclass(exc, ReproError)
