"""Tests for the parallel, cached experiment engine.

The contract under test: cached, serial and parallel execution of the
same sweep are interchangeable — a warm cache serves every cell without
recomputation, a process pool produces numerically identical results,
and one failing cell degrades to a recorded error instead of killing
the sweep.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.system import (
    ExperimentRunner,
    MachineResult,
    SuiteResult,
    system_by_key,
)
from repro.workloads import MixedStrideWorkload, StridedCopyWorkload


def small_workloads():
    return [
        MixedStrideWorkload(strides=(1, 16), accesses_per_stride=600),
        StridedCopyWorkload(stride_lines=8, accesses_per_thread=600),
    ]


def small_systems():
    # Covers all three stage shapes: no profiling (bs_dm), suite-mix
    # profiling (bs_bsm) and per-workload selection (sdm_bsm).
    return [
        system_by_key("bs_dm"),
        system_by_key("bs_bsm"),
        system_by_key("sdm_bsm"),
    ]


class ExplodingWorkload(StridedCopyWorkload):
    """A workload whose trace generation always fails."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.name = "exploding"

    def trace(self, base, input_seed=0):
        raise RuntimeError("boom")


class TestCaching:
    def test_warm_cache_serves_every_cell_bit_identically(self, tmp_path):
        workloads, systems = small_workloads(), small_systems()
        first = ExperimentRunner(cache_dir=tmp_path).run_suite(
            workloads, systems=systems
        )
        assert not first.errors
        assert first.metrics["evaluate"].cache_misses == len(workloads) * len(
            systems
        )

        # A fresh runner on the same cache: zero recomputation.
        second = ExperimentRunner(cache_dir=tmp_path).run_suite(
            workloads, systems=systems
        )
        assert not second.errors
        assert second.cache_misses == 0
        assert second.metrics["evaluate"].cache_hits == len(workloads) * len(
            systems
        )
        assert second.bytes_simulated == 0
        assert second.table.to_dict() == first.table.to_dict()

    def test_run_one_round_trips_through_the_disk_cache(self, tmp_path):
        workload = small_workloads()[0]
        system = system_by_key("sdm_bsm")
        first = ExperimentRunner(cache_dir=tmp_path).run_one(workload, system)
        second = ExperimentRunner(cache_dir=tmp_path).run_one(workload, system)
        assert second.to_dict() == first.to_dict()

    def test_different_seed_is_a_different_cell(self, tmp_path):
        workload = small_workloads()[0]
        system = system_by_key("bs_dm")
        runner = ExperimentRunner(cache_dir=tmp_path)
        a = runner.run_one(workload, system, eval_seed=1)
        b = runner.run_one(workload, system, eval_seed=2)
        assert a.fingerprint() != b.fingerprint()


class TestParallelEquivalence:
    def test_parallel_cold_matches_serial_cold(self):
        workloads, systems = small_workloads(), small_systems()
        serial = ExperimentRunner(max_workers=0).run_suite(
            workloads, systems=systems
        )
        parallel = ExperimentRunner(max_workers=2).run_suite(
            workloads, systems=systems
        )
        assert not serial.errors and not parallel.errors
        assert parallel.table.fingerprint() == serial.table.fingerprint()

    def test_results_arrive_in_workload_major_order(self):
        workloads, systems = small_workloads(), small_systems()
        suite = ExperimentRunner(max_workers=2).run_suite(
            workloads, systems=systems
        )
        assert suite.table.workloads() == [w.name for w in workloads]
        assert suite.table.systems() == [s.label for s in systems]


class TestFailureIsolation:
    def test_one_bad_workload_does_not_kill_the_sweep(self):
        good = small_workloads()[0]
        bad = ExplodingWorkload(stride_lines=4, accesses_per_thread=600)
        systems = [system_by_key("bs_dm"), system_by_key("bs_hm")]
        suite = ExperimentRunner().run_suite([good, bad], systems=systems)
        assert suite.table.workloads() == [good.name]
        assert len(suite.errors) == len(systems)
        for error in suite.errors:
            assert error.workload == "exploding"
            assert error.stage == "evaluate"
            assert "boom" in error.message
        with pytest.raises(ConfigError, match="boom"):
            suite.raise_errors()

    def test_run_one_raises_on_failure(self):
        bad = ExplodingWorkload(stride_lines=4, accesses_per_thread=600)
        with pytest.raises(ConfigError, match="boom"):
            ExperimentRunner().run_one(bad, system_by_key("bs_dm"))


class TestSerialization:
    def test_suite_result_round_trips_through_json(self):
        workloads = [small_workloads()[0]]
        systems = [system_by_key("bs_dm"), system_by_key("sdm_bsm")]
        suite = ExperimentRunner().run_suite(workloads, systems=systems)
        rebuilt = SuiteResult.from_dict(json.loads(suite.to_json()))
        assert rebuilt.to_dict() == suite.to_dict()
        assert rebuilt.table.geomean("SDM+BSM") == suite.table.geomean(
            "SDM+BSM"
        )

    def test_machine_result_round_trips(self):
        workload = small_workloads()[0]
        result = ExperimentRunner().run_one(workload, system_by_key("sdm_bsm"))
        rebuilt = MachineResult.from_dict(json.loads(result.to_json()))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.selection.num_mappings == result.selection.num_mappings
