"""Tests for system configurations."""

import pytest

from repro.errors import ConfigError
from repro.system.config import SystemConfig, standard_systems, system_by_key


class TestStandardSystems:
    def test_full_comparison_set(self):
        systems = standard_systems()
        labels = [s.label for s in systems]
        assert labels == [
            "BS+DM",
            "BS+BSM",
            "BS+HM",
            "SDM+BSM",
            "SDM+BSM+ML(4)",
            "SDM+BSM+ML(32)",
            "SDM+BSM+DL(4)",
            "SDM+BSM+DL(32)",
        ]

    def test_baseline_first(self):
        assert standard_systems()[0].key == "bs_dm"

    def test_profiling_requirements(self):
        by_key = {s.key: s for s in standard_systems()}
        assert not by_key["bs_dm"].needs_profiling
        assert not by_key["bs_hm"].needs_profiling
        assert by_key["bs_bsm"].needs_profiling
        assert by_key["sdm_bsm"].needs_profiling

    def test_custom_cluster_counts(self):
        systems = standard_systems(cluster_counts=(8,))
        assert any(s.key == "sdm_bsm_ml8" for s in systems)


class TestLookup:
    def test_known_keys(self):
        assert system_by_key("bs_hm").label == "BS+HM"
        assert system_by_key("sdm_bsm_dl32").clusters == 32

    def test_arbitrary_cluster_count(self):
        system = system_by_key("sdm_bsm_ml7")
        assert system.clusters == 7
        assert system.clustering == "kmeans"

    def test_unknown(self):
        with pytest.raises(ConfigError):
            system_by_key("nonsense")


class TestValidation:
    def test_clustering_requires_sdam(self):
        with pytest.raises(ConfigError):
            SystemConfig("x", "X", sdam=False, policy="bsm", clustering="kmeans", clusters=4)

    def test_clusters_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig("x", "X", sdam=True, policy="bsm", clustering="dl", clusters=0)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            SystemConfig("x", "X", sdam=False, policy="magic")
