"""End-to-end property tests across the whole pipeline.

Hypothesis drives randomized workloads/system choices through the full
Machine pipeline and asserts the invariants that must survive any
configuration: Section 4's one-to-one translation, conservation of
requests, stats sanity, and reproducibility.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import audit_controller
from repro.core.sdam import SDAMController
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.system import Machine, system_by_key
from repro.workloads import MixedStrideWorkload, StridedCopyWorkload

SYSTEM_KEYS = ("bs_dm", "bs_bsm", "bs_hm", "sdm_bsm", "sdm_bsm_ml2")


@st.composite
def small_workloads(draw):
    kind = draw(st.sampled_from(["copy", "mixed"]))
    if kind == "copy":
        stride = draw(st.sampled_from([1, 2, 8, 32]))
        return StridedCopyWorkload(
            stride_lines=stride,
            threads=draw(st.integers(1, 4)),
            accesses_per_thread=600,
        )
    strides = draw(
        st.lists(st.sampled_from([1, 4, 16, 32]), min_size=1, max_size=3, unique=True)
    )
    return MixedStrideWorkload(
        strides=tuple(strides), accesses_per_stride=600
    )


class TestPipelineInvariants:
    @given(workload=small_workloads(), key=st.sampled_from(SYSTEM_KEYS))
    @settings(max_examples=12, deadline=None)
    def test_stats_are_sane_for_any_configuration(self, workload, key):
        result = Machine(system_by_key(key)).run(workload)
        stats = result.stats
        assert stats.requests == len(result.external.trace)
        assert stats.row_hits + stats.row_misses == stats.requests
        assert stats.per_channel_requests.sum() == stats.requests
        assert 0 <= stats.clp_utilization <= 1.0 + 1e-9
        assert stats.throughput_gbps >= 0
        assert result.time_ns > 0

    @given(workload=small_workloads())
    @settings(max_examples=8, deadline=None)
    def test_translation_is_bijective_after_any_run(self, workload):
        """Audit the live controller after a full SDAM run."""
        machine = Machine(system_by_key("sdm_bsm_ml2"))
        machine.run(workload)
        # Build a fresh controller the way the machine did and audit it.
        profile = machine.profile(workload)
        selection = machine.select(profile)
        controller = SDAMController(machine.geometry)
        kernel = Kernel(machine.geometry, sdam=controller)
        for perm in selection.window_perms:
            kernel.add_addr_map(perm)
        report = audit_controller(controller, sample_chunks=4)
        assert report.ok, report.failures

    def test_same_seeds_reproduce_exactly(self):
        workload = MixedStrideWorkload(strides=(1, 16), accesses_per_stride=800)
        first = Machine(system_by_key("sdm_bsm_ml2")).run(workload)
        second = Machine(system_by_key("sdm_bsm_ml2")).run(workload)
        assert first.stats.makespan_ns == second.stats.makespan_ns
        assert first.stats.row_hits == second.stats.row_hits

    def test_different_eval_seed_changes_trace_not_mappings(self):
        workload = MixedStrideWorkload(strides=(4, 16), accesses_per_stride=800)
        machine = Machine(system_by_key("sdm_bsm_ml2"))
        a = machine.run(workload, profile_seed=0, eval_seed=1)
        b = machine.run(workload, profile_seed=0, eval_seed=2)
        perms_a = [p.tolist() for p in a.selection.window_perms]
        perms_b = [p.tolist() for p in b.selection.window_perms]
        assert perms_a == perms_b  # mapping choice is input-stable
        # The evaluation traces themselves differ (phase shift)...
        assert not np.array_equal(a.external.trace.va, b.external.trace.va)
        # ...but performance stays in the same band (Section 7.4's
        # cross-validation result).
        assert a.stats.makespan_ns == pytest.approx(
            b.stats.makespan_ns, rel=0.2
        )


class TestAllocatorInvariantsUnderLoad:
    @given(
        sizes=st.lists(st.integers(64, 1 << 18), min_size=2, max_size=24),
        mapping_count=st.integers(1, 4),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=20, deadline=None)
    def test_frames_always_match_mapping_groups(self, sizes, mapping_count, seed):
        """Every touched page lives in a chunk of its variable's group."""
        from repro.core.chunks import ChunkGeometry, MiB

        geometry = ChunkGeometry(total_bytes=64 * MiB)
        kernel = Kernel(geometry, sdam=SDAMController(geometry))
        space = kernel.spawn()
        malloc = MappingAwareAllocator(kernel, space)
        rng = np.random.default_rng(seed)
        mapping_ids = [0] + [
            malloc.add_addr_map(np.roll(np.arange(geometry.window_bits), s + 1))
            for s in range(mapping_count - 1)
        ]
        for index, size in enumerate(sizes):
            mapping_id = mapping_ids[index % len(mapping_ids)]
            va = malloc.malloc(size, mapping_id=mapping_id, tag=f"v{index}")
            touch = np.uint64(va) + np.arange(
                0, size, geometry.page_bytes, dtype=np.uint64
            )
            pa = space.translate_trace(touch)
            chunks = np.unique(geometry.chunk_number(pa))
            for chunk in chunks:
                assert kernel.physical.mapping_of_chunk(int(chunk)) == mapping_id
