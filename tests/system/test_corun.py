"""Tests for multiprogrammed (co-run) execution with a shared CMT."""

import pytest

from repro.errors import ConfigError
from repro.system.corun import CorunMachine
from repro.workloads import MixedStrideWorkload, StridedCopyWorkload


def small_apps():
    return [
        StridedCopyWorkload(stride_lines=16, accesses_per_thread=1500),
        StridedCopyWorkload(stride_lines=4, accesses_per_thread=1500),
    ]


class TestCorun:
    def test_runs_and_reports(self):
        machine = CorunMachine(clusters_per_app=2)
        result = machine.run(small_apps())
        assert result.stats.requests > 0
        assert result.workload_names == ["copy-stride16", "copy-stride4"]

    def test_sdam_beats_baseline(self):
        apps = small_apps()
        base = CorunMachine(use_sdam=False).run(apps)
        sdam = CorunMachine(use_sdam=True, clusters_per_app=2).run(apps)
        assert sdam.time_ns < base.time_ns

    def test_mapping_budget_shared(self):
        machine = CorunMachine(clusters_per_app=2)
        result = machine.run(small_apps())
        # identity + up to 2 clusters per app.
        assert result.live_mappings <= 1 + 2 * 2

    def test_budget_never_overflows(self):
        apps = [
            MixedStrideWorkload(strides=(1, 4, 8, 16), accesses_per_stride=800)
            for _ in range(3)
        ]
        machine = CorunMachine(clusters_per_app=4, max_mappings=256)
        result = machine.run(apps)
        assert result.live_mappings <= 256

    def test_small_budget_still_works(self):
        apps = small_apps()
        tight = CorunMachine(clusters_per_app=1).run(apps)
        roomy = CorunMachine(clusters_per_app=4).run(apps)
        assert tight.stats.requests == pytest.approx(
            roomy.stats.requests, rel=0.1
        )
        # More clusters never hurt badly.
        assert roomy.time_ns <= tight.time_ns * 1.15

    def test_no_workloads_rejected(self):
        with pytest.raises(ConfigError):
            CorunMachine().run([])

    def test_bad_cluster_count(self):
        with pytest.raises(ConfigError):
            CorunMachine(clusters_per_app=0)
