"""Fused datapath vs legacy two-step: bit-exact, end to end.

The acceptance property of the fused pipeline: for every system in
``system/config.py``, ``decode_translated(pa, translator, config)`` is
bit-identical to ``decode_trace(translator.translate(pa), config)``,
and a ``Machine`` run with ``debug_ha=True`` (the legacy two-step
evaluate stage) fingerprints identically to the fused default.
"""

import numpy as np
import pytest

from repro import api
from repro.core.bitshuffle import select_global_mapping
from repro.core.chunks import ChunkGeometry
from repro.core.hashing import default_hash_mapping
from repro.core.mapping import identity_mapping
from repro.core.sdam import GlobalMappingTranslator, SDAMController
from repro.hbm.config import hbm2_config
from repro.hbm.decode import decode_trace, decode_translated
from repro.profiling.bfrv import bit_flip_rate_vector
from repro.system.config import standard_systems

CONFIG = hbm2_config()
SYSTEMS = standard_systems(cluster_counts=(4,))


def _random_trace(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = CONFIG.total_bytes // CONFIG.line_bytes
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(
        CONFIG.line_bytes
    )


def _sdam_controller(num_mappings: int, seed: int) -> SDAMController:
    geometry = ChunkGeometry(total_bytes=CONFIG.total_bytes)
    controller = SDAMController(geometry)
    rng = np.random.default_rng(seed)
    mapping_ids = [
        controller.register_mapping(rng.permutation(geometry.window_bits))
        for _ in range(num_mappings)
    ]
    for chunk_no in range(geometry.num_chunks):
        if mapping_ids:
            controller.assign_chunk(
                chunk_no, mapping_ids[chunk_no % len(mapping_ids)]
            )
    return controller


def _translators():
    """One translator per mapping family the six systems exercise."""
    layout = CONFIG.layout()
    pa = _random_trace(4096, seed=0)
    yield "identity", GlobalMappingTranslator(identity_mapping(layout.width))
    yield "hash", GlobalMappingTranslator(default_hash_mapping(layout))
    yield "bsm", GlobalMappingTranslator(
        select_global_mapping(bit_flip_rate_vector(pa, layout.width), layout)
    )
    yield "sdam_single_live", _sdam_controller(num_mappings=0, seed=1)
    yield "sdam_multi", _sdam_controller(num_mappings=8, seed=1)


def _assert_decoded_equal(fused, legacy, what):
    for name in ("channel", "bank", "row", "column", "global_bank"):
        np.testing.assert_array_equal(
            getattr(fused, name), getattr(legacy, name), err_msg=f"{what}.{name}"
        )


class TestTranslatorEquivalence:
    @pytest.mark.parametrize(
        "name,translator", list(_translators()), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_fused_matches_two_step(self, name, translator):
        pa = _random_trace(8192, seed=42)
        fused = decode_translated(pa, translator, CONFIG)
        legacy = decode_trace(translator.translate(pa), CONFIG)
        _assert_decoded_equal(fused, legacy, name)

    def test_single_chunk_trace_uses_one_group(self):
        # A trace inside one chunk touches one mapping: still bit-exact.
        controller = _sdam_controller(num_mappings=8, seed=7)
        chunk = controller.geometry.chunk_bytes
        pa = (np.arange(512, dtype=np.uint64) * np.uint64(64)) + np.uint64(
            3 * chunk
        )
        fused = decode_translated(pa, controller, CONFIG)
        legacy = decode_trace(controller.translate(pa), CONFIG)
        _assert_decoded_equal(fused, legacy, "single_chunk")

    def test_empty_trace(self):
        controller = _sdam_controller(num_mappings=4, seed=3)
        pa = np.empty(0, dtype=np.uint64)
        fused = decode_translated(pa, controller, CONFIG)
        assert len(fused) == 0

    def test_lut_translate_matches_group_loop(self):
        # The crossbar-LUT gather vs the masked per-mapping group loop.
        controller = _sdam_controller(num_mappings=8, seed=5)
        pa = _random_trace(8192, seed=6)
        via_lut = controller.translate(pa)
        ha = pa.copy()
        for select, operator in controller.translation_groups(pa):
            assert select is not None  # mixed trace: per-mapping groups
            if not operator.is_identity():
                ha[select] = operator.apply(pa[select])
        np.testing.assert_array_equal(via_lut, ha)

    def test_wide_window_falls_back_without_lut(self):
        # 8 MiB chunks push the window past LUT_MAX_WINDOW_BITS.
        geometry = ChunkGeometry(
            total_bytes=CONFIG.total_bytes, chunk_bytes=8 * 1024 * 1024
        )
        assert geometry.window_bits > SDAMController.LUT_MAX_WINDOW_BITS
        controller = SDAMController(geometry)
        rng = np.random.default_rng(11)
        mapping_ids = [
            controller.register_mapping(rng.permutation(geometry.window_bits))
            for _ in range(4)
        ]
        for chunk_no in range(geometry.num_chunks):
            controller.assign_chunk(
                chunk_no, mapping_ids[chunk_no % len(mapping_ids)]
            )
        assert controller.window_lut() is None
        pa = _random_trace(4096, seed=12)
        fused = decode_translated(pa, controller, CONFIG)
        legacy = decode_trace(controller.translate(pa), CONFIG)
        _assert_decoded_equal(fused, legacy, "wide_window")


class TestMachineEquivalence:
    @pytest.mark.parametrize("spec", SYSTEMS, ids=lambda s: s.key)
    def test_debug_ha_fingerprint_identical(self, spec):
        workload = api.mixed_stride_workload(
            strides=(1, 16), accesses_per_stride=2048
        )
        kwargs = {"dl_config": api.QUICK_DL_CONFIG}
        fused = api.Machine(spec, **kwargs).run(workload)
        legacy = api.Machine(spec, debug_ha=True, **kwargs).run(workload)
        assert fused.fingerprint() == legacy.fingerprint()
