"""Tests for the translation-datapath microbenchmark."""

import json

import pytest

from repro.__main__ import main
from repro.system.bench import SCENARIOS, STAGES, run_benchmark, write_report


@pytest.fixture(scope="module")
def tiny_report():
    # One small run shared by the structural assertions below: the
    # benchmark asserts fused == baseline bit-exactness internally, so
    # even a tiny trace is a real correctness check.
    return run_benchmark(accesses=4096, seed=1, repeats=1)


class TestRunBenchmark:
    def test_report_structure(self, tiny_report):
        assert tiny_report["schema"] == 1
        assert tiny_report["accesses"] == 4096
        assert set(tiny_report["cells"]) == set(SCENARIOS)
        for cell in tiny_report["cells"].values():
            assert set(cell) == set(STAGES)
            for timing in cell.values():
                assert timing["baseline_ns"] > 0
                assert timing["fused_ns"] > 0
                assert timing["speedup"] > 0

    def test_summary_is_geomean_over_scenarios(self, tiny_report):
        summary = tiny_report["summary_speedup_geomean"]
        assert set(summary) == set(STAGES)
        for stage in STAGES:
            speedups = [
                tiny_report["cells"][s][stage]["speedup"] for s in SCENARIOS
            ]
            product = 1.0
            for value in speedups:
                product *= value
            assert summary[stage] == pytest.approx(
                product ** (1.0 / len(speedups))
            )

    def test_write_report(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path / "bench.json")
        loaded = json.loads(path.read_text())
        assert loaded["benchmark"] == "translation-datapath"
        assert loaded["cells"].keys() == tiny_report["cells"].keys()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown bench scenario"):
            run_benchmark(accesses=256, repeats=1, scenarios=("nope",))


class TestBenchCLI:
    def test_bench_writes_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_translation.json"
        assert (
            main(
                [
                    "bench",
                    "--accesses",
                    "4096",
                    "--repeats",
                    "1",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "geomean speedups" in stdout
        assert out.exists()
        report = json.loads(out.read_text())
        assert report["accesses"] == 4096

    def test_min_speedup_gate_fails(self, capsys, tmp_path):
        # An absurd gate must fail with a diagnostic on stderr.
        code = main(
            [
                "bench",
                "--accesses",
                "4096",
                "--repeats",
                "1",
                "--out",
                str(tmp_path / "b.json"),
                "--min-speedup",
                "1e9",
            ]
        )
        assert code == 1
        assert "below the" in capsys.readouterr().err
