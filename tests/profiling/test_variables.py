"""Tests for the allocation-site registry (call-stack-matching stand-in)."""

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.profiling.variables import UNATTRIBUTED, VariableRegistry


class TestRegistry:
    def test_variable_created_once(self):
        registry = VariableRegistry()
        a = registry.variable("adjacency")
        b = registry.variable("adjacency")
        assert a is b
        assert len(registry) == 1

    def test_ids_sequential(self):
        registry = VariableRegistry()
        assert registry.variable("a").variable_id == 0
        assert registry.variable("b").variable_id == 1

    def test_record_allocation_grows_footprint(self):
        registry = VariableRegistry()
        registry.record_allocation("a", va=0x1000, size=256)
        registry.record_allocation("a", va=0x8000, size=256)
        assert registry.variable("a").size_bytes == 512
        assert len(registry.variable("a").regions) == 2

    def test_zero_size_rejected(self):
        with pytest.raises(ProfilingError):
            VariableRegistry().record_allocation("a", 0, 0)

    def test_by_id(self):
        registry = VariableRegistry()
        registry.record_allocation("x", 0x100, 16)
        assert registry.by_id(0).name == "x"
        with pytest.raises(ProfilingError):
            registry.by_id(5)

    def test_covers(self):
        registry = VariableRegistry()
        info = registry.record_allocation("x", 0x100, 16)
        assert info.covers(0x100)
        assert info.covers(0x10F)
        assert not info.covers(0x110)


class TestAttribution:
    def test_basic_attribution(self):
        registry = VariableRegistry()
        registry.record_allocation("a", 0x1000, 0x100)
        registry.record_allocation("b", 0x2000, 0x100)
        addresses = np.array([0x1000, 0x2080, 0x1050, 0x9999], dtype=np.uint64)
        owners = registry.attribute(addresses)
        assert owners.tolist() == [0, 1, 0, UNATTRIBUTED]

    def test_boundaries_half_open(self):
        registry = VariableRegistry()
        registry.record_allocation("a", 0x1000, 0x100)
        owners = registry.attribute(
            np.array([0xFFF, 0x1000, 0x10FF, 0x1100], dtype=np.uint64)
        )
        assert owners.tolist() == [UNATTRIBUTED, 0, 0, UNATTRIBUTED]

    def test_multiple_regions_one_variable(self):
        registry = VariableRegistry()
        registry.record_allocation("a", 0x1000, 0x100)
        registry.record_allocation("a", 0x5000, 0x100)
        owners = registry.attribute(np.array([0x1010, 0x5010], dtype=np.uint64))
        assert owners.tolist() == [0, 0]

    def test_empty_registry(self):
        registry = VariableRegistry()
        owners = registry.attribute(np.array([1, 2], dtype=np.uint64))
        assert (owners == UNATTRIBUTED).all()

    def test_overlapping_regions_rejected(self):
        registry = VariableRegistry()
        registry.record_allocation("a", 0x1000, 0x200)
        registry.record_allocation("b", 0x1100, 0x100)
        with pytest.raises(ProfilingError):
            registry.attribute(np.array([0x1000], dtype=np.uint64))

    def test_index_rebuild_after_new_allocation(self):
        registry = VariableRegistry()
        registry.record_allocation("a", 0x1000, 0x100)
        registry.attribute(np.array([0x1000], dtype=np.uint64))
        registry.record_allocation("b", 0x3000, 0x100)
        owners = registry.attribute(np.array([0x3000], dtype=np.uint64))
        assert owners.tolist() == [1]
