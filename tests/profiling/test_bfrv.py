"""Tests for bit-flip-rate vectors (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.profiling.bfrv import (
    bit_flip_rate_vector,
    dominant_flip_bit,
    window_flip_rates,
)


def stride_addresses(stride_lines: int, count: int = 512) -> np.ndarray:
    return np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)


class TestBFRV:
    def test_streaming_hottest_bit_is_line_bit(self):
        rates = bit_flip_rate_vector(stride_addresses(1), num_bits=20)
        assert rates.argmax() == 6  # bit 6 flips every access

    def test_stride_shifts_peak_left_to_right(self):
        """Fig. 3(b): increasing stride moves the flip peak upward."""
        peaks = [
            dominant_flip_bit(stride_addresses(s), num_bits=24)
            for s in (1, 2, 4, 8, 16)
        ]
        assert peaks == [6, 7, 8, 9, 10]

    def test_flip_rate_halves_up_the_carry_chain(self):
        rates = bit_flip_rate_vector(stride_addresses(1), num_bits=10)
        assert rates[6] == pytest.approx(1.0, abs=0.01)
        assert rates[7] == pytest.approx(0.5, abs=0.01)
        assert rates[8] == pytest.approx(0.25, abs=0.02)

    def test_constant_trace_all_zero(self):
        rates = bit_flip_rate_vector(np.full(100, 0x1234, dtype=np.uint64), 16)
        assert (rates == 0).all()

    def test_short_trace(self):
        assert (bit_flip_rate_vector(np.array([1], dtype=np.uint64), 8) == 0).all()
        assert (bit_flip_rate_vector(np.zeros(0, dtype=np.uint64), 8) == 0).all()

    def test_bit_offset(self):
        rates = bit_flip_rate_vector(stride_addresses(1), num_bits=5, bit_offset=6)
        assert rates[0] == pytest.approx(1.0, abs=0.01)

    def test_invalid_bits(self):
        with pytest.raises(ProfilingError):
            bit_flip_rate_vector(stride_addresses(1), num_bits=0)


class TestWindowRates:
    def test_window_matches_offset_form(self):
        addresses = stride_addresses(4)
        window = window_flip_rates(addresses, (6, 21))
        direct = bit_flip_rate_vector(addresses, 15, bit_offset=6)
        np.testing.assert_allclose(window, direct)

    def test_empty_window_rejected(self):
        with pytest.raises(ProfilingError):
            window_flip_rates(stride_addresses(1), (10, 10))


@given(
    stride_pow=st.integers(0, 6),
    count=st.integers(16, 256),
)
@settings(max_examples=30, deadline=None)
def test_rates_bounded_and_peak_tracks_stride(stride_pow, count):
    addresses = stride_addresses(1 << stride_pow, count)
    rates = bit_flip_rate_vector(addresses, num_bits=30)
    assert (rates >= 0).all() and (rates <= 1).all()
    assert rates.argmax() == 6 + stride_pow
