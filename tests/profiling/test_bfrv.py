"""Tests for bit-flip-rate vectors (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.profiling.bfrv import (
    DEGENERATE_CONSTANT,
    DEGENERATE_SHORT,
    bit_flip_rate_vector,
    flip_counts,
    dominant_flip_bit,
    window_flip_rates,
)


def stride_addresses(stride_lines: int, count: int = 512) -> np.ndarray:
    return np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)


class TestBFRV:
    def test_streaming_hottest_bit_is_line_bit(self):
        rates = bit_flip_rate_vector(stride_addresses(1), num_bits=20)
        assert rates.argmax() == 6  # bit 6 flips every access

    def test_stride_shifts_peak_left_to_right(self):
        """Fig. 3(b): increasing stride moves the flip peak upward."""
        peaks = [
            dominant_flip_bit(stride_addresses(s), num_bits=24)
            for s in (1, 2, 4, 8, 16)
        ]
        assert peaks == [6, 7, 8, 9, 10]

    def test_flip_rate_halves_up_the_carry_chain(self):
        rates = bit_flip_rate_vector(stride_addresses(1), num_bits=10)
        assert rates[6] == pytest.approx(1.0, abs=0.01)
        assert rates[7] == pytest.approx(0.5, abs=0.01)
        assert rates[8] == pytest.approx(0.25, abs=0.02)

    def test_constant_trace_all_zero(self):
        rates = bit_flip_rate_vector(np.full(100, 0x1234, dtype=np.uint64), 16)
        assert (rates == 0).all()

    def test_short_trace(self):
        assert (bit_flip_rate_vector(np.array([1], dtype=np.uint64), 8) == 0).all()
        assert (bit_flip_rate_vector(np.zeros(0, dtype=np.uint64), 8) == 0).all()

    def test_bit_offset(self):
        rates = bit_flip_rate_vector(stride_addresses(1), num_bits=5, bit_offset=6)
        assert rates[0] == pytest.approx(1.0, abs=0.01)

    def test_invalid_bits(self):
        with pytest.raises(ProfilingError):
            bit_flip_rate_vector(stride_addresses(1), num_bits=0)


class TestDegenerateFlags:
    def test_short_trace_flagged(self):
        for trace in (np.zeros(0, dtype=np.uint64), np.array([1], dtype=np.uint64)):
            flags = {}
            rates = bit_flip_rate_vector(trace, 8, flags=flags)
            assert (rates == 0).all()
            assert flags["degenerate"] == DEGENERATE_SHORT

    def test_constant_trace_flagged(self):
        flags = {}
        rates = bit_flip_rate_vector(
            np.full(32, 0x40, dtype=np.uint64), 8, flags=flags
        )
        assert (rates == 0).all()
        assert flags["degenerate"] == DEGENERATE_CONSTANT

    def test_healthy_trace_clears_stale_flag(self):
        flags = {"degenerate": DEGENERATE_SHORT}
        bit_flip_rate_vector(stride_addresses(1), 8, flags=flags)
        assert flags["degenerate"] is None

    def test_window_flip_rates_forwards_flags(self):
        flags = {}
        window_flip_rates(np.zeros(1, dtype=np.uint64), (6, 21), flags=flags)
        assert flags["degenerate"] == DEGENERATE_SHORT

    def test_flags_optional(self):
        # The default path stays flag-free and silent on degeneracy.
        assert (
            bit_flip_rate_vector(np.zeros(0, dtype=np.uint64), 8) == 0
        ).all()


class TestFlipCounts:
    def test_counts_are_integral_core_of_rates(self):
        addresses = stride_addresses(3)
        diffs = addresses[1:] ^ addresses[:-1]
        counts = flip_counts(diffs, 20)
        np.testing.assert_array_equal(
            counts / float(diffs.size), bit_flip_rate_vector(addresses, 20)
        )
        assert counts.dtype == np.int64

    def test_bit_offset_shifts_the_window(self):
        diffs = np.array([0b1100_0000], dtype=np.uint64)
        np.testing.assert_array_equal(
            flip_counts(diffs, 2, bit_offset=6), [1, 1]
        )

    def test_invalid_bits(self):
        with pytest.raises(ProfilingError):
            flip_counts(np.zeros(1, dtype=np.uint64), 0)


class TestWindowRates:
    def test_window_matches_offset_form(self):
        addresses = stride_addresses(4)
        window = window_flip_rates(addresses, (6, 21))
        direct = bit_flip_rate_vector(addresses, 15, bit_offset=6)
        np.testing.assert_allclose(window, direct)

    def test_empty_window_rejected(self):
        with pytest.raises(ProfilingError):
            window_flip_rates(stride_addresses(1), (10, 10))


@given(
    stride_pow=st.integers(0, 6),
    count=st.integers(16, 256),
)
@settings(max_examples=30, deadline=None)
def test_rates_bounded_and_peak_tracks_stride(stride_pow, count):
    addresses = stride_addresses(1 << stride_pow, count)
    rates = bit_flip_rate_vector(addresses, num_bits=30)
    assert (rates >= 0).all() and (rates <= 1).all()
    assert rates.argmax() == 6 + stride_pow
