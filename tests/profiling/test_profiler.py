"""Tests for trace profiling and major-variable identification."""

import numpy as np
import pytest

from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.profiling.profiler import profile_trace
from repro.profiling.variables import VariableRegistry


def build_scene():
    """Three variables with 70/20/10 reference shares."""
    registry = VariableRegistry()
    registry.record_allocation("big", 0x10000, 0x10000)
    registry.record_allocation("mid", 0x30000, 0x10000)
    registry.record_allocation("small", 0x50000, 0x10000)
    rng = np.random.default_rng(0)
    parts = []
    tags = []
    for base, count, tag in ((0x10000, 700, 0), (0x30000, 200, 1), (0x50000, 100, 2)):
        parts.append(base + rng.integers(0, 0x10000, count, dtype=np.uint64))
        tags.append(np.full(count, tag))
    order = rng.permutation(1000)
    va = np.concatenate(parts)[order]
    variable = np.concatenate(tags)[order]
    trace = AccessTrace(va=va, variable=variable)
    return registry, trace


class TestProfileTrace:
    def test_reference_counts(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry, name="scene")
        assert profile.total_references == 1000
        assert profile.by_name("big").references == 700

    def test_profiles_sorted_by_references(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        refs = [p.references for p in profile.profiles]
        assert refs == sorted(refs, reverse=True)

    def test_attribution_fallback_matches_tags(self):
        registry, trace = build_scene()
        tagged = profile_trace(trace, registry)
        untagged_trace = AccessTrace(va=trace.va)
        attributed = profile_trace(untagged_trace, registry, use_tags=False)
        assert tagged.by_name("big").references == attributed.by_name(
            "big"
        ).references

    def test_unattributed_excluded_from_total(self):
        registry = VariableRegistry()
        registry.record_allocation("only", 0x1000, 0x100)
        trace = AccessTrace(va=np.array([0x1000, 0x9000], dtype=np.uint64))
        profile = profile_trace(trace, registry, use_tags=False)
        assert profile.total_references == 1

    def test_sub_trace_addresses(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        big = profile.by_name("big")
        assert (big.addresses >= 0x10000).all()
        assert (big.addresses < 0x20000).all()

    def test_by_name_missing(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        with pytest.raises(ProfilingError):
            profile.by_name("nothing")


class TestMajorVariables:
    def test_eighty_percent_rule(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        majors = profile.major_variables()
        # big (70%) alone is < 80%; big+mid (90%) crosses it.
        assert [m.name for m in majors] == ["big", "mid"]

    def test_full_coverage_takes_all(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        assert len(profile.major_variables(coverage=1.0)) == 3

    def test_tiny_coverage_takes_top_one(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        assert [m.name for m in profile.major_variables(0.1)] == ["big"]

    def test_invalid_coverage(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry)
        with pytest.raises(ProfilingError):
            profile.major_variables(0)

    def test_table1_row_shape(self):
        registry, trace = build_scene()
        profile = profile_trace(trace, registry, name="scene")
        row = profile.table1_row()
        assert row["benchmark"] == "scene"
        assert row["num_variables"] == 3
        assert row["num_major_variables"] == 2
        assert row["min_major_size_mb"] <= row["avg_major_size_mb"]


class TestDeltaTrace:
    def test_delta_is_xor(self):
        registry = VariableRegistry()
        registry.record_allocation("v", 0, 1 << 20)
        trace = AccessTrace(
            va=np.array([0, 64, 192], dtype=np.uint64),
            variable=np.array([0, 0, 0]),
        )
        profile = profile_trace(trace, registry)
        deltas = profile.by_name("v").delta_trace()
        assert deltas.tolist() == [64, 64 ^ 192]

    def test_single_access_empty_delta(self):
        registry = VariableRegistry()
        registry.record_allocation("v", 0, 4096)
        trace = AccessTrace(va=np.array([0], dtype=np.uint64), variable=np.array([0]))
        profile = profile_trace(trace, registry)
        assert profile.by_name("v").delta_trace().size == 0
