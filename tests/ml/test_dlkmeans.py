"""Tests for the DL-assisted K-Means pipeline (Section 6.2 / Fig. 9)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.dlkmeans import (
    AutoencoderConfig,
    DLAssistedKMeans,
    EmbeddingAutoencoder,
    paper_hyperparameters,
)

FAST = AutoencoderConfig(
    pretrain_steps=40,
    joint_steps=20,
    hidden_dim=16,
    delta_embed_dim=8,
    vid_embed_dim=2,
    batch_size=16,
)


def stride_delta_trace(stride_lines: int, count: int = 1500) -> np.ndarray:
    addresses = np.arange(count, dtype=np.uint64) * np.uint64(stride_lines * 64)
    return addresses[1:] ^ addresses[:-1]


class TestAutoencoder:
    def test_forward_shapes(self):
        model = EmbeddingAutoencoder(
            delta_vocab_size=8, num_variables=3, target_bits=15, config=FAST
        )
        delta_ids = np.zeros((4, FAST.sequence_length), dtype=np.int64)
        vid_ids = np.zeros((4, FAST.sequence_length), dtype=np.int64)
        z, recon, _cache = model.forward(delta_ids, vid_ids)
        assert z.shape == (4, FAST.hidden_dim)
        assert recon.shape == (4, FAST.sequence_length, 15)

    def test_loss_decreases_under_training(self):
        rng = np.random.default_rng(0)
        model = EmbeddingAutoencoder(8, 2, 15, FAST)
        from repro.ml.adam import Adam

        optimizer = Adam(model.params, lr=0.01)
        delta_ids = rng.integers(0, 8, (8, FAST.sequence_length))
        vid_ids = np.zeros_like(delta_ids)
        targets = (delta_ids[..., None] & 1).astype(float).repeat(15, axis=2)
        first = None
        last = None
        for _step in range(30):
            z, recon, cache = model.forward(delta_ids, vid_ids)
            loss = model.reconstruction_loss(recon, targets)
            if first is None:
                first = loss
            last = loss
            grads = model.backward(cache, targets)
            optimizer.step(grads)
        assert last < first

    def test_zero_bits_rejected(self):
        with pytest.raises(TrainingError):
            EmbeddingAutoencoder(8, 2, 0, FAST)


class TestDLAssistedKMeans:
    def test_separates_two_stride_families(self):
        traces = [stride_delta_trace(1) for _ in range(3)] + [
            stride_delta_trace(16) for _ in range(3)
        ]
        result = DLAssistedKMeans(2, AutoencoderConfig()).fit(traces)
        assert len(set(result.labels[:3].tolist())) == 1
        assert len(set(result.labels[3:].tolist())) == 1
        assert result.labels[0] != result.labels[3]

    def test_result_fields(self):
        traces = [stride_delta_trace(1), stride_delta_trace(4)]
        result = DLAssistedKMeans(2, FAST).fit(traces)
        assert result.embeddings.shape == (2, FAST.hidden_dim)
        assert result.elapsed_seconds > 0
        assert 0 <= result.vocab_coverage <= 1
        assert len(result.loss_history) == FAST.pretrain_steps + FAST.joint_steps

    def test_short_traces_padded(self):
        traces = [stride_delta_trace(1, count=5), stride_delta_trace(2, count=5)]
        result = DLAssistedKMeans(2, FAST).fit(traces)
        assert result.labels.size == 2

    def test_k_clamped_to_variables(self):
        traces = [stride_delta_trace(1), stride_delta_trace(8)]
        result = DLAssistedKMeans(10, FAST).fit(traces)
        assert result.centroids.shape[0] <= 2

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            DLAssistedKMeans(2, FAST).fit([])

    def test_all_empty_traces_rejected(self):
        with pytest.raises(TrainingError):
            DLAssistedKMeans(1, FAST).fit([np.zeros(0, dtype=np.uint64)])

    def test_k_zero_rejected(self):
        with pytest.raises(TrainingError):
            DLAssistedKMeans(0)


class TestPaperHyperparameters:
    def test_table2_values(self):
        config = paper_hyperparameters()
        assert config.sequence_length == 32
        assert config.learning_rate == 0.001
        assert config.cluster_weight == 0.01
        assert config.hidden_dim == 256
        assert config.pretrain_steps + config.joint_steps == 500_000
