"""Tests for embedding layers and the delta vocabulary."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.embedding import DeltaVocabulary, Embedding


class TestEmbedding:
    def make(self, vocab=6, dim=3):
        params = {}
        emb = Embedding(vocab, dim, params, "e", np.random.default_rng(0))
        return emb, params

    def test_lookup_shape(self):
        emb, _params = self.make()
        out = emb.forward(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 3)

    def test_same_id_same_vector(self):
        emb, _params = self.make()
        out = emb.forward(np.array([1, 1]))
        np.testing.assert_array_equal(out[0], out[1])

    def test_out_of_range(self):
        emb, _params = self.make()
        with pytest.raises(TrainingError):
            emb.forward(np.array([6]))

    def test_backward_accumulates_sparse(self):
        emb, params = self.make()
        ids = np.array([[1, 1]])
        grads = {}
        d_vectors = np.ones((1, 2, 3))
        emb.backward(ids, d_vectors, grads)
        table_grad = grads["e.table"]
        np.testing.assert_array_equal(table_grad[1], [2.0, 2.0, 2.0])
        assert (table_grad[0] == 0).all()

    def test_invalid_dims(self):
        with pytest.raises(TrainingError):
            Embedding(0, 3, {}, "e", np.random.default_rng(0))


class TestDeltaVocabulary:
    def test_most_frequent_kept(self):
        deltas = np.array([64] * 10 + [128] * 5 + [999] * 1, dtype=np.uint64)
        vocab = DeltaVocabulary(max_size=3).fit(deltas)
        ids = vocab.encode(np.array([64, 128, 999], dtype=np.uint64))
        assert ids[0] != DeltaVocabulary.OOV
        assert ids[1] != DeltaVocabulary.OOV
        assert ids[2] == DeltaVocabulary.OOV

    def test_coverage(self):
        deltas = np.array([64] * 9 + [777], dtype=np.uint64)
        vocab = DeltaVocabulary(max_size=2).fit(deltas)
        assert vocab.coverage(deltas) == pytest.approx(0.9)

    def test_empty_coverage(self):
        vocab = DeltaVocabulary(max_size=4).fit(np.zeros(0, dtype=np.uint64))
        assert vocab.coverage(np.zeros(0, dtype=np.uint64)) == 0.0

    def test_size_counts_oov(self):
        deltas = np.array([1, 2, 3], dtype=np.uint64)
        vocab = DeltaVocabulary(max_size=16).fit(deltas)
        assert vocab.size == 4

    def test_min_size(self):
        with pytest.raises(TrainingError):
            DeltaVocabulary(max_size=1)
