"""Tests for the from-scratch K-Means (Equation 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError
from repro.ml.kmeans import KMeans


def two_blobs(n=40, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 0.05, (n, 3)) + np.array([1.0, 0, 0])
    b = rng.normal(0, 0.05, (n, 3)) + np.array([0, 1.0, 0])
    return np.vstack([a, b])


class TestFit:
    def test_separates_two_blobs(self):
        result = KMeans(2, seed=1).fit(two_blobs())
        labels = result.labels
        assert len(set(labels[:40].tolist())) == 1
        assert len(set(labels[40:].tolist())) == 1
        assert labels[0] != labels[40]

    def test_centroids_near_blob_means(self):
        points = two_blobs()
        result = KMeans(2, seed=1).fit(points)
        centroid_xs = sorted(result.centroids[:, 0].tolist())
        assert centroid_xs[0] == pytest.approx(0.0, abs=0.05)
        assert centroid_xs[1] == pytest.approx(1.0, abs=0.05)

    def test_inertia_decreases_with_more_clusters(self):
        points = two_blobs()
        one = KMeans(1, seed=0).fit(points).inertia
        two = KMeans(2, seed=0).fit(points).inertia
        assert two < one

    def test_k1_centroid_is_mean(self):
        points = two_blobs()
        result = KMeans(1, seed=0).fit(points)
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))

    def test_deterministic_given_seed(self):
        points = two_blobs()
        a = KMeans(2, seed=5).fit(points)
        b = KMeans(2, seed=5).fit(points)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_k_equals_n(self):
        points = two_blobs(n=3)
        result = KMeans(6, seed=0, n_init=1).fit(points)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        result = KMeans(2, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0)


class TestValidation:
    def test_k_zero(self):
        with pytest.raises(TrainingError):
            KMeans(0)

    def test_too_few_points(self):
        with pytest.raises(TrainingError):
            KMeans(5).fit(np.zeros((2, 3)))

    def test_empty(self):
        with pytest.raises(TrainingError):
            KMeans(1).fit(np.zeros((0, 3)))


class TestAssign:
    def test_nearest_centroid(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = KMeans.assign(np.array([[1.0, 1.0], [9.0, 9.0]]), centroids)
        assert labels.tolist() == [0, 1]


@given(seed=st.integers(0, 100), k=st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_labels_in_range_and_inertia_matches_definition(seed, k):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(30, 4))
    result = KMeans(k, seed=seed).fit(points)
    assert result.labels.min() >= 0 and result.labels.max() < k
    # Eq. 2: inertia equals the summed squared distance to assigned centroids.
    recomputed = sum(
        float(((p - result.centroids[label]) ** 2).sum())
        for p, label in zip(points, result.labels)
    )
    assert result.inertia == pytest.approx(recomputed, rel=1e-9)
