"""Gradient checks and behaviour tests for the numpy LSTM."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.lstm import LSTMCell, LSTMLayer, sigmoid


def numeric_gradient(f, array, eps=1e-6):
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = f()
        array[idx] = original - eps
        minus = f()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestSigmoid:
    def test_range(self):
        x = np.linspace(-50, 50, 101)
        y = sigmoid(x)
        assert (y >= 0).all() and (y <= 1).all()
        moderate = sigmoid(np.linspace(-20, 20, 41))
        assert (moderate > 0).all() and (moderate < 1).all()

    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_no_overflow(self):
        assert np.isfinite(sigmoid(np.array([-1000.0, 1000.0]))).all()


class TestLSTMCell:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        params = {}
        cell = LSTMCell(3, 5, params, "c", rng)
        h, c, _cache = cell.forward(
            rng.normal(size=(2, 3)), np.zeros((2, 5)), np.zeros((2, 5))
        )
        assert h.shape == (2, 5)
        assert c.shape == (2, 5)

    def test_invalid_dims(self):
        with pytest.raises(TrainingError):
            LSTMCell(0, 4, {}, "c", np.random.default_rng(0))

    def test_gradient_check_full_sequence(self):
        """Analytic BPTT gradients match numerical differentiation."""
        rng = np.random.default_rng(42)
        params = {}
        layer = LSTMLayer(2, 3, params, "L", rng)
        x = rng.normal(size=(2, 4, 2))
        target = rng.normal(size=(2, 4, 3))

        def loss_value() -> float:
            outputs, _h, _caches = layer.forward(x)
            return float(((outputs - target) ** 2).sum())

        outputs, _h, caches = layer.forward(x)
        d_outputs = 2 * (outputs - target)
        grads: dict[str, np.ndarray] = {}
        dx, _dh0 = layer.backward(d_outputs, None, caches, grads)

        for name in ("L.Wx", "L.Wh", "L.b"):
            numeric = numeric_gradient(loss_value, params[name])
            np.testing.assert_allclose(
                grads[name], numeric, rtol=1e-4, atol=1e-6
            )
        numeric_dx = numeric_gradient(loss_value, x)
        np.testing.assert_allclose(dx, numeric_dx, rtol=1e-4, atol=1e-6)

    def test_gradient_check_final_hidden(self):
        """Gradient through only the final hidden state (encoder path)."""
        rng = np.random.default_rng(7)
        params = {}
        layer = LSTMLayer(2, 3, params, "E", rng)
        x = rng.normal(size=(1, 3, 2))
        weight = rng.normal(size=(3,))

        def loss_value() -> float:
            _outputs, h, _caches = layer.forward(x)
            return float((h * weight).sum())

        _outputs, _h, caches = layer.forward(x)
        grads: dict[str, np.ndarray] = {}
        dh_last = np.broadcast_to(weight, (1, 3)).copy()
        dx, _ = layer.backward(None, dh_last, caches, grads)
        numeric_dx = numeric_gradient(loss_value, x)
        np.testing.assert_allclose(dx, numeric_dx, rtol=1e-4, atol=1e-6)


class TestLSTMLayer:
    def test_state_carries_information(self):
        """The final hidden state depends on early inputs."""
        rng = np.random.default_rng(1)
        params = {}
        layer = LSTMLayer(1, 4, params, "L", rng)
        x1 = np.zeros((1, 5, 1))
        x2 = x1.copy()
        x2[0, 0, 0] = 1.0  # perturb only the first step
        _o1, h1, _ = layer.forward(x1)
        _o2, h2, _ = layer.forward(x2)
        assert not np.allclose(h1, h2)

    def test_h0_used(self):
        rng = np.random.default_rng(2)
        params = {}
        layer = LSTMLayer(1, 4, params, "L", rng)
        x = np.zeros((1, 2, 1))
        _o1, h1, _ = layer.forward(x, h0=np.zeros((1, 4)))
        _o2, h2, _ = layer.forward(x, h0=np.ones((1, 4)))
        assert not np.allclose(h1, h2)

    def test_forget_bias_initialised(self):
        params = {}
        LSTMCell(2, 3, params, "c", np.random.default_rng(0))
        bias = params["c.b"]
        assert (bias[3:6] == 1.0).all()  # forget gate slice
        assert (bias[:3] == 0.0).all()
