"""Tests for the Adam optimiser."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.adam import Adam


class TestAdam:
    def test_minimises_quadratic(self):
        params = {"x": np.array([5.0])}
        optimizer = Adam(params, lr=0.1)
        for _ in range(300):
            grad = 2 * params["x"]
            optimizer.step({"x": grad})
        assert abs(params["x"][0]) < 0.01

    def test_first_step_size_is_lr(self):
        params = {"x": np.array([1.0])}
        optimizer = Adam(params, lr=0.01, clip=0)
        optimizer.step({"x": np.array([123.0])})
        # Bias-corrected Adam moves ~lr on step 1 regardless of scale.
        assert params["x"][0] == pytest.approx(1.0 - 0.01, rel=1e-3)

    def test_unknown_param_rejected(self):
        optimizer = Adam({"x": np.zeros(1)})
        with pytest.raises(TrainingError):
            optimizer.step({"y": np.zeros(1)})

    def test_bad_lr(self):
        with pytest.raises(TrainingError):
            Adam({"x": np.zeros(1)}, lr=0)

    def test_clipping_bounds_update(self):
        params = {"x": np.array([0.0])}
        optimizer = Adam(params, lr=0.1, clip=1.0)
        optimizer.step({"x": np.array([1e9])})
        assert abs(params["x"][0]) <= 0.11

    def test_missing_grads_skip_params(self):
        params = {"x": np.array([1.0]), "y": np.array([2.0])}
        optimizer = Adam(params, lr=0.1)
        optimizer.step({"x": np.array([1.0])})
        assert params["y"][0] == 2.0

    def test_updates_in_place(self):
        x = np.array([1.0])
        optimizer = Adam({"x": x}, lr=0.1)
        optimizer.step({"x": np.array([1.0])})
        assert x[0] != 1.0
