"""Tests for the ``python -m repro`` command-line front end."""

import json

import pytest

from repro.__main__ import main


def _tiny_suite(monkeypatch):
    """Shrink the suite sweep so CLI tests stay fast."""
    from repro import api
    from repro.system import system_by_key

    monkeypatch.setattr(
        api,
        "evaluation_workloads",
        lambda *, quick=True: [
            api.mixed_stride_workload(strides=(1, 16), accesses_per_stride=600)
        ],
    )
    monkeypatch.setattr(
        api,
        "standard_systems",
        lambda: [system_by_key("bs_dm"), system_by_key("sdm_bsm")],
    )


class TestCLI:
    def test_hw(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "AMU" in out and "CMT" in out

    def test_stride(self, capsys):
        assert main(["stride", "--accesses", "2048"]) == 0
        out = capsys.readouterr().out
        assert "stride" in out and "204.8" in out

    def test_audit_ok(self, capsys):
        assert main(["audit", "--mappings", "4", "--chunks", "8"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "SDM+BSM" in out

    def test_suite_json(self, capsys, monkeypatch):
        _tiny_suite(monkeypatch)
        assert main(["suite", "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) >= {"table", "errors", "metrics", "workers"}
        assert not data["errors"]
        assert list(data["table"]["results"]) == ["copy-mixed-1x16"]

    def test_suite_table_reports_cache_stats(self, capsys, monkeypatch):
        _tiny_suite(monkeypatch)
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "speedup over BS+DM" in out
        assert "cache" in out

    def test_suite_uses_cache_dir(self, capsys, monkeypatch, tmp_path):
        _tiny_suite(monkeypatch)
        assert main(["suite", "--cache-dir", str(tmp_path)]) == 0
        assert (tmp_path / "result").is_dir()
        capsys.readouterr()

    def test_suite_rejects_quick_and_full(self):
        with pytest.raises(SystemExit):
            main(["suite", "--quick", "--full"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_suite_resume_finishes_from_cache(self, capsys, monkeypatch, tmp_path):
        _tiny_suite(monkeypatch)
        assert main(["suite", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["suite", "--resume", "--cache-dir", str(tmp_path)]) == 0
        assert "speedup over BS+DM" in capsys.readouterr().out

    def test_verify_cache_healthy(self, capsys, monkeypatch, tmp_path):
        _tiny_suite(monkeypatch)
        assert main(["suite", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["verify-cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "result" in out and "healthy" in out

    def test_verify_cache_quarantines_corrupt_entry(
        self, capsys, monkeypatch, tmp_path
    ):
        _tiny_suite(monkeypatch)
        assert main(["suite", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        victim = next((tmp_path / "result").glob("*.json"))
        victim.write_text("{torn")
        assert main(["verify-cache", "--cache-dir", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert victim.name in captured.out
        assert "quarantined" in captured.err
        assert (tmp_path / "quarantine" / "result" / victim.name).exists()
        # The sweep recomputes the quarantined cell and heals the cache.
        assert main(["suite", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["verify-cache", "--cache-dir", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verify"]["result"]["quarantined"] == []
        assert report["gc"] is None


class TestAdaptCommand:
    def test_adapt_quick_passes_gate(self, capsys, tmp_path):
        out_path = tmp_path / "adapt.json"
        code = main(
            ["adapt", "--quick", "--min-speedup", "1.1", "--out", str(out_path)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "speedup" in captured
        assert "<- best" in captured
        assert "stationary control: 0 remaps" in captured
        data = json.loads(out_path.read_text())
        assert data["speedup"] >= 1.1
        assert data["remaps"] >= 2
        assert data["stationary_remaps"] == 0
        assert "identity" in data["static_ns"]

    def test_adapt_json_output(self, capsys):
        assert main(["adapt", "--quick", "--seed", "7", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seed"] == 7
        assert data["best_static"] in data["static_ns"]

    def test_adapt_gate_failure_is_nonzero(self, capsys):
        assert main(["adapt", "--quick", "--min-speedup", "1000"]) == 1
        assert "below the" in capsys.readouterr().err

    def test_adapt_rejects_quick_and_full(self):
        with pytest.raises(SystemExit):
            main(["adapt", "--quick", "--full"])


class TestOnlineBench:
    def test_bench_online_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "bench_online.json"
        code = main(
            [
                "bench",
                "--online",
                "--accesses",
                "16384",
                "--repeats",
                "1",
                "--out",
                str(out_path),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "streaming" in captured
        report = json.loads(out_path.read_text())
        assert "streaming" in report["summary_speedup_geomean"]
        assert set(report["cells"]) == {"stream", "random", "phase-mix"}


class TestRASCommand:
    def test_ras_quick_campaign(self, capsys, tmp_path):
        out_path = tmp_path / "ras_report.json"
        code = main(
            ["ras", "--quick", "--seed", "7", "--out", str(out_path)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "faults injected" in captured
        assert "fingerprint match" in captured
        data = json.loads(out_path.read_text())
        assert data["ok"] is True
        assert data["problems"] == []
        kinds = {d["site"] for d in data["report"]["detections"]}
        assert len(kinds) >= 4

    def test_ras_kind_subset_json(self, capsys):
        assert main(["ras", "--seed", "2", "--kinds", "row,cmt", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert len(data["report"]["detections"]) == 2

    def test_ras_stop_after_exits_3_then_resumes(self, capsys, tmp_path):
        ckpt = tmp_path / "ras.ckpt"
        base = [
            "ras", "--quick", "--seed", "2", "--kinds", "row,cmt",
            "--checkpoint", str(ckpt),
        ]
        assert main(base + ["--stop-after", "2"]) == 3
        assert "campaign interrupted" in capsys.readouterr().err
        assert ckpt.exists()
        assert main(base + ["--resume", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["resumed"] is True


class TestCampaignCheckpointFlags:
    def test_adapt_stop_after_exits_3_then_resumes(self, capsys, tmp_path):
        ckpt = tmp_path / "adapt.ckpt"
        base = ["adapt", "--quick", "--seed", "7", "--checkpoint", str(ckpt)]
        assert main(base + ["--stop-after", "8"]) == 3
        assert "campaign interrupted" in capsys.readouterr().err
        assert main(base + ["--resume", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["resumed"] is True


class TestServeCommand:
    def test_serve_selftest_writes_report(self, capsys, tmp_path):
        out = tmp_path / "service_report.json"
        assert main([
            "serve", "--selftest", "--quick", "--tenants", "2",
            "--no-controllers", "--out", str(out),
        ]) == 0
        assert "ISOLATED" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["isolated"] is True
        assert data["tenants"] == ["tenant0", "tenant1"]
        assert data["mismatches"] == []

    def test_serve_json_output(self, capsys):
        assert main([
            "serve", "--quick", "--tenants", "2", "--no-controllers",
            "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["isolated"] is True

    def test_serve_rejects_quick_and_full(self):
        with pytest.raises(SystemExit):
            main(["serve", "--quick", "--full"])

    def test_serve_selftest_interrupt_exits_3(self, capsys, monkeypatch):
        import repro.service

        def interrupted(**kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            repro.service, "run_service_campaign", interrupted
        )
        assert main(["serve", "--quick", "--tenants", "2"]) == 3
        assert "selftest interrupted" in capsys.readouterr().err


class TestServeSoakMode:
    def test_soak_with_injected_fault_exits_0(self, capsys, tmp_path):
        out = tmp_path / "soak_health.json"
        assert main([
            "serve", "--load", "2", "--duration", "0.3",
            "--queue-depth", "4", "--fault", "service.lane.crash",
            "--out", str(out),
        ]) == 0
        assert "health journal written" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["conserved"] is True
        assert data["violations"] == []
        assert data["lane_crashes"] >= 1
        assert data["lane_restarts"] >= 1
        assert data["completed"] >= 1

    def test_soak_interrupt_exits_3(self, capsys, monkeypatch, tmp_path):
        from repro.service.frontend import ServiceFrontend

        def interrupted(self, spec):
            raise KeyboardInterrupt

        monkeypatch.setattr(ServiceFrontend, "admit", interrupted)
        out = tmp_path / "soak_health.json"
        code = main([
            "serve", "--load", "1", "--duration", "0.1", "--out", str(out),
        ])
        assert code == 3
        assert "soak interrupted" in capsys.readouterr().err
        # The journal is still written on interrupt.
        assert json.loads(out.read_text())["submitted"] == 0

    def test_soak_health_violation_exits_1(self, capsys, monkeypatch):
        from repro.service.health import ServiceHealth

        monkeypatch.setattr(
            ServiceHealth,
            "violations",
            lambda self: ["injected accounting hole"],
        )
        assert main([
            "serve", "--load", "1", "--duration", "0.1", "--json",
        ]) == 1
        captured = capsys.readouterr()
        assert "service health violated" in captured.err
        assert (
            json.loads(captured.out)["violations"]
            == ["injected accounting hole"]
        )


class TestServeBackendFlag:
    def test_selftest_backend_threads_through(self, capsys, monkeypatch):
        import repro.service

        seen = {}
        real = repro.service.run_service_campaign

        def spy(**kwargs):
            seen.update(kwargs)
            return real(
                seed=kwargs["seed"],
                tenants=kwargs["tenants"],
                quick=kwargs["quick"],
                controllers=False,
                frontend_legs=False,
                backend=kwargs["backend"],
            )

        monkeypatch.setattr(repro.service, "run_service_campaign", spy)
        assert main(
            ["serve", "--quick", "--tenants", "2", "--backend", "fast"]
        ) == 0
        assert seen["backend"] == "fast"
        assert "ISOLATED" in capsys.readouterr().out

    def test_soak_backend_reaches_tenant_specs(self, monkeypatch, capsys):
        from repro.service import ServiceFrontend

        admitted = []
        real_admit = ServiceFrontend.admit

        def spy(self, spec):
            admitted.append(spec.backend)
            return real_admit(self, spec)

        monkeypatch.setattr(ServiceFrontend, "admit", spy)
        assert main([
            "serve", "--load", "1", "--duration", "0.1",
            "--backend", "tiered",
        ]) == 0
        capsys.readouterr()
        assert admitted == ["tiered"]


class TestTierCommand:
    def test_tier_quick_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "tier.json"
        assert main(
            ["tier", "--quick", "--out", str(out_path)]
        ) == 0
        captured = capsys.readouterr().out
        assert "smart" in captured
        assert "invariants: OK" in captured
        data = json.loads(out_path.read_text())
        assert data["ok"] is True
        assert data["problems"] == []
        for leg in ("skew", "pressure"):
            assert data["speedups"][leg] > 1.0

    def test_tier_json_single_policy(self, capsys):
        assert main(
            ["tier", "--quick", "--seed", "3", "--policy", "slow", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seed"] == 3
        assert data["policies"] == ["slow"]

    def test_tier_rejects_quick_and_full(self):
        with pytest.raises(SystemExit):
            main(["tier", "--quick", "--full"])

    def test_tier_interrupt_exits_3(self, capsys, monkeypatch):
        import repro.tier.campaign

        def interrupted(**kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            repro.tier.campaign, "run_tier_campaign", interrupted
        )
        assert main(["tier", "--quick"]) == 3
        assert "interrupted" in capsys.readouterr().err


class TestTierBench:
    def test_bench_tier_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "bench_tier.json"
        code = main(
            [
                "bench",
                "--tier",
                "--repeats",
                "1",
                "--out",
                str(out_path),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "smart-tiered" in captured
        report = json.loads(out_path.read_text())
        assert report["benchmark"] == "tiered-memory"
        assert "smart" in report["summary_speedup_geomean"]
        assert set(report["cells"]) == {"skew", "pressure"}

    def test_bench_tier_gate_failure_exits_1(self, capsys):
        assert main(
            ["bench", "--tier", "--repeats", "1", "--min-speedup", "1000"]
        ) == 1
        assert "below the" in capsys.readouterr().err

    def test_bench_rejects_tier_and_online(self):
        with pytest.raises(SystemExit):
            main(["bench", "--tier", "--online"])
