"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_hw(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "AMU" in out and "CMT" in out

    def test_stride(self, capsys):
        assert main(["stride", "--accesses", "2048"]) == 0
        out = capsys.readouterr().out
        assert "stride" in out and "204.8" in out

    def test_audit_ok(self, capsys):
        assert main(["audit", "--mappings", "4", "--chunks", "8"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "SDM+BSM" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
