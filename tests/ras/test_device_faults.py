"""Tests for device fault specs and seeded fault plans."""

import pytest

from repro.core.chunks import ChunkGeometry
from repro.errors import DeviceFaultError
from repro.faults.sites import (
    DEVICE_AMU_MISPROGRAM,
    DEVICE_CMT_FLIP,
    DEVICE_HBM_BANK,
    DEVICE_HBM_CHANNEL,
    DEVICE_HBM_ROW,
    DEVICE_SITES,
    ENGINE_SITES,
    KNOWN_SITES,
    matches_known_site,
)
from repro.ras.campaign import small_ras_config
from repro.ras.faults import DeviceFaultPlan, DeviceFaultSpec


class TestSiteRegistry:
    def test_device_family_registered(self):
        assert DEVICE_HBM_ROW in KNOWN_SITES
        assert DEVICE_CMT_FLIP in DEVICE_SITES
        assert not set(DEVICE_SITES) & set(ENGINE_SITES)

    def test_family_filtered_matching(self):
        assert matches_known_site("device.hbm.*", family="device")
        assert not matches_known_site("device.hbm.*", family="engine")


class TestSpecValidation:
    def test_unknown_site_fails_fast(self):
        with pytest.raises(DeviceFaultError, match="unknown device fault"):
            DeviceFaultSpec(site="device.hbm.rank", channel=0)

    def test_engine_site_gets_a_hint(self):
        with pytest.raises(DeviceFaultError, match="FaultPlan"):
            DeviceFaultSpec(site=ENGINE_SITES[0])

    def test_missing_coordinates_rejected(self):
        with pytest.raises(DeviceFaultError, match="'row'"):
            DeviceFaultSpec(site=DEVICE_HBM_ROW, channel=0, bank=0)
        with pytest.raises(DeviceFaultError, match="'channel'"):
            DeviceFaultSpec(site=DEVICE_HBM_CHANNEL)
        with pytest.raises(DeviceFaultError, match="mapping_index"):
            DeviceFaultSpec(site=DEVICE_AMU_MISPROGRAM)

    def test_cmt_flip_needs_a_target_word(self):
        with pytest.raises(DeviceFaultError, match="chunk_no"):
            DeviceFaultSpec(site=DEVICE_CMT_FLIP)
        DeviceFaultSpec(site=DEVICE_CMT_FLIP, chunk_no=3, bit=2)
        DeviceFaultSpec(site=DEVICE_CMT_FLIP, mapping_index=1, lane=4, bit=1)

    def test_negative_trigger_rejected(self):
        with pytest.raises(DeviceFaultError, match="trigger_access"):
            DeviceFaultSpec(
                site=DEVICE_HBM_CHANNEL, channel=0, trigger_access=-1
            )

    def test_kind_and_physical_classifiers(self):
        row = DeviceFaultSpec(site=DEVICE_HBM_ROW, channel=0, bank=1, row=2)
        cmt = DeviceFaultSpec(site=DEVICE_CMT_FLIP, chunk_no=0)
        assert row.kind == "row" and row.is_physical
        assert cmt.kind == "cmt" and not cmt.is_physical

    def test_dict_round_trip(self):
        spec = DeviceFaultSpec(
            site=DEVICE_HBM_BANK, trigger_access=500, channel=3, bank=1
        )
        assert DeviceFaultSpec.from_dict(spec.to_dict()) == spec


class TestPlan:
    def specs(self):
        return [
            DeviceFaultSpec(
                site=DEVICE_HBM_CHANNEL, channel=1, trigger_access=100
            ),
            DeviceFaultSpec(
                site=DEVICE_CMT_FLIP, chunk_no=0, trigger_access=300
            ),
        ]

    def test_pop_due_fires_each_spec_once(self):
        plan = DeviceFaultPlan(self.specs())
        assert plan.pop_due(50) == []
        assert len(plan.pop_due(100)) == 1
        assert plan.pop_due(200) == []
        assert len(plan.pop_due(1000)) == 1
        assert plan.pending == 0

    def test_dict_round_trip_rearms(self):
        plan = DeviceFaultPlan(self.specs())
        plan.pop_due(10_000)
        rebuilt = DeviceFaultPlan.from_dict(plan.to_dict())
        assert rebuilt.pending == 2

    def test_seeded_is_deterministic(self):
        config = small_ras_config()
        geometry = ChunkGeometry(total_bytes=config.total_bytes)
        a = DeviceFaultPlan.seeded(9, config, geometry)
        b = DeviceFaultPlan.seeded(9, config, geometry)
        assert [s.to_dict() for s in a.specs] == [s.to_dict() for s in b.specs]

    def test_seeded_unknown_kind_rejected(self):
        config = small_ras_config()
        geometry = ChunkGeometry(total_bytes=config.total_bytes)
        with pytest.raises(DeviceFaultError, match="unknown fault kind"):
            DeviceFaultPlan.seeded(0, config, geometry, kinds=("rank",))

    def test_retargeted_replaces_one_spec(self):
        plan = DeviceFaultPlan(self.specs())
        moved = plan.retargeted(0, channel=5)
        assert moved.specs[0].channel == 5
        assert plan.specs[0].channel == 1
