"""End-to-end RAS campaign tests: the PR's acceptance criteria.

The heavyweight checks live here: a seeded campaign injecting every
fault kind must end with each fault repaired (or explicitly degraded)
and with the faulty machine's surviving contents bit-identical to a
never-faulted twin — zero silent corruption.
"""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry
from repro.faults.sites import DEVICE_HBM_ROW
from repro.ras.campaign import (
    ALL_KINDS,
    RASMachine,
    run_campaign,
    small_ras_config,
)
from repro.ras.faults import DeviceFaultSpec


class TestAcceptance:
    def test_full_kind_campaign_is_clean(self):
        """Acceptance: >= 4 distinct fault kinds, all repaired, no
        silent corruption over the surviving address space."""
        result = run_campaign(seed=7, kinds=ALL_KINDS, quick=True)
        report = result.report
        assert result.ok, result.summary()
        kinds = {d["site"] for d in report.detections}
        assert len(kinds) >= 4
        assert report.all_detected and report.all_repaired
        assert report.fingerprint_match
        assert report.lines_migrated > 0
        assert report.pages_retired > 0
        # Losses (if any) are ECC-visible, never silent: accounted 1:1.
        assert report.lines_survived + report.lines_lost == (
            report.lines_written
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fingerprint_property_across_seeds(self, seed):
        """Property: for any seed, a completed repair leaves subsequent
        traffic's fingerprint identical to the never-faulted twin's
        over the surviving space."""
        result = run_campaign(seed=seed, kinds=ALL_KINDS, quick=True)
        assert result.report.fingerprint_match, result.summary()
        assert result.ok, result.summary()

    def test_campaign_is_deterministic(self):
        first = run_campaign(seed=3, kinds=("row", "cmt"), quick=True)
        second = run_campaign(seed=3, kinds=("row", "cmt"), quick=True)
        assert first.to_dict() == second.to_dict()

    def test_channel_loss_degrades_gracefully(self):
        result = run_campaign(seed=5, kinds=("channel",), quick=True)
        report = result.report
        assert result.ok, result.summary()
        assert report.degraded
        assert len(report.dead_channels) == 1
        assert report.residual_slowdown >= 1.0

    def test_row_only_campaign_needs_no_degradation(self):
        result = run_campaign(seed=2, kinds=("row",), quick=True)
        assert result.ok, result.summary()
        assert not result.report.degraded
        assert result.report.dead_channels == []


class TestRASMachine:
    def machine(self, seed=0):
        config = small_ras_config()
        machine = RASMachine(config=config, seed=seed)
        rng = np.random.default_rng(seed + 1)
        machine.add_mapping(rng.permutation(machine.geometry.window_bits))
        vma = machine.mmap(8 * machine.geometry.page_bytes, 1)
        lines = vma.length // machine.geometry.line_bytes
        va = np.uint64(vma.start) + np.arange(
            lines, dtype=np.uint64
        ) * np.uint64(machine.geometry.line_bytes)
        machine.write(va, np.arange(lines))
        return machine, va

    def test_reads_return_written_values(self):
        machine, va = self.machine()
        values, ecc, _stats = machine.read(va)
        assert not ecc.any()
        np.testing.assert_array_equal(values, np.arange(va.size))

    def test_physical_fault_reports_ecc_not_garbage(self):
        machine, va = self.machine()
        ha = machine.sdam.translate(
            machine.space.translate_trace(va[:1])
        )
        from repro.hbm.decode import decode_trace

        decoded = decode_trace(ha, machine.config)
        machine.inject(
            DeviceFaultSpec(
                site=DEVICE_HBM_ROW,
                channel=int(decoded.channel[0]),
                bank=int(decoded.bank[0]),
                row=int(decoded.row[0]),
            )
        )
        values, ecc, _stats = machine.read(va[:1])
        assert ecc[0]
        assert values[0] == -1

    def test_patrol_repairs_injected_row(self):
        machine, va = self.machine()
        ha = machine.sdam.translate(machine.space.translate_trace(va[:1]))
        from repro.hbm.decode import decode_trace

        decoded = decode_trace(ha, machine.config)
        machine.inject(
            DeviceFaultSpec(
                site=DEVICE_HBM_ROW,
                channel=int(decoded.channel[0]),
                bank=int(decoded.bank[0]),
                row=int(decoded.row[0]),
            )
        )
        machine.patrol()  # patrol scrub finds errors and escalates
        machine.patrol()
        actions = {e["action"] for e in machine.controller.events}
        assert "repair-row" in actions
        # After the repair no healthy line decodes to the stuck row.
        occupied = np.array(
            machine.storage.occupied_lines(), dtype=np.uint64
        )
        decoded_all = decode_trace(occupied, machine.config)
        bad = machine._fault_mask(decoded_all)
        assert not bad.any()

    def test_geometry_capacity_mismatch_rejected(self):
        from repro.errors import RASError

        with pytest.raises(RASError):
            RASMachine(
                config=small_ras_config(),
                geometry=ChunkGeometry(total_bytes=32 * 1024**2),
            )
