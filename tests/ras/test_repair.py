"""Tests for fault-cube geometry and repair-mapping composition."""

import numpy as np
import pytest

from repro.core.bitmatrix import BitOperator
from repro.core.chunks import ChunkGeometry
from repro.errors import DeviceFaultError
from repro.ras.campaign import small_ras_config
from repro.ras.repair import (
    FaultCube,
    compose_repair,
    cube_for,
    cube_offsets,
    fold_cube,
    preimage_pages,
    row_fault_chunk,
)

CONFIG = small_ras_config()
GEOMETRY = ChunkGeometry(total_bytes=CONFIG.total_bytes)


class TestCubeGeometry:
    def test_row_cube_pins_one_chunk(self):
        cube = cube_for(CONFIG, GEOMETRY, "row", channel=2, bank=1, row=300)
        assert cube.chunk_no == row_fault_chunk(CONFIG, GEOMETRY, 300)
        assert cube.applies_to(cube.chunk_no)
        assert not cube.applies_to(cube.chunk_no + 1)

    def test_bank_and_channel_cubes_span_all_chunks(self):
        for kind, kwargs in (
            ("bank", dict(channel=2, bank=1)),
            ("channel", dict(channel=2)),
        ):
            cube = cube_for(CONFIG, GEOMETRY, kind, **kwargs)
            assert cube.chunk_no is None
            assert cube.applies_to(0) and cube.applies_to(31)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DeviceFaultError):
            cube_for(CONFIG, GEOMETRY, "rank", channel=0)

    def test_mask_value_consistent_with_matches(self):
        cube = cube_for(CONFIG, GEOMETRY, "bank", channel=3, bank=2)
        offsets = np.arange(1 << GEOMETRY.window_bits, dtype=np.uint64)
        matched = offsets[cube.matches(offsets)]
        assert matched.size == (1 << GEOMETRY.window_bits) >> len(cube.fixed)
        assert ((matched & np.uint64(cube.mask)) == np.uint64(cube.value)).all()

    def test_preimage_sizes_under_identity(self):
        """Under the identity mapping the channel bits lie *inside*
        every page, so a dead channel's preimage is the whole chunk —
        the motivation for composing a repair mapping at all."""
        identity = BitOperator.from_permutation(
            np.arange(GEOMETRY.window_bits)
        )
        sizes = {}
        for kind, kwargs in (
            ("row", dict(channel=1, bank=0, row=5)),
            ("bank", dict(channel=1, bank=0)),
            ("channel", dict(channel=1)),
        ):
            cube = cube_for(CONFIG, GEOMETRY, kind, **kwargs)
            sizes[kind] = len(preimage_pages(identity, cube, GEOMETRY))
        pages_per_chunk = GEOMETRY.chunk_bytes // GEOMETRY.page_bytes
        assert sizes["row"] == 1  # row bits sit above the page bits
        assert sizes["channel"] == pages_per_chunk  # every page reaches it
        assert 1 < sizes["bank"] <= pages_per_chunk

    def test_fold_cube_halves_the_window(self):
        cube = fold_cube(CONFIG, GEOMETRY, dead_channel=5)
        identity = BitOperator.from_permutation(
            np.arange(GEOMETRY.window_bits)
        )
        offsets = cube_offsets(identity, cube, GEOMETRY.window_bits)
        assert offsets.size == (1 << GEOMETRY.window_bits) // 2


class TestComposeRepair:
    def quarantined(self, perm, cube, retired_pages):
        """No non-retired page offset may reach the cube."""
        operator = BitOperator.from_permutation(perm)
        leaked = set(preimage_pages(operator, cube, GEOMETRY)) - set(
            retired_pages
        )
        return not leaked

    def test_row_repair_costs_one_page(self):
        cube = cube_for(CONFIG, GEOMETRY, "row", channel=2, bank=1, row=40)
        rng = np.random.default_rng(0)
        perm, pages = compose_repair(GEOMETRY, [cube], rng)
        assert len(pages) == 1
        assert self.quarantined(perm, cube, pages)

    def test_bank_repair_costs_sixteen_pages(self):
        cube = cube_for(CONFIG, GEOMETRY, "bank", channel=2, bank=1)
        rng = np.random.default_rng(0)
        perm, pages = compose_repair(GEOMETRY, [cube], rng)
        assert len(pages) == 16
        assert self.quarantined(perm, cube, pages)

    def test_channel_repair_costs_its_capacity_share(self):
        """Exact-channel quarantine retires 1/num_channels of the chunk
        (64 pages here) — far better than the identity's whole chunk."""
        cube = cube_for(CONFIG, GEOMETRY, "channel", channel=6)
        rng = np.random.default_rng(0)
        perm, pages = compose_repair(GEOMETRY, [cube], rng)
        pages_per_chunk = GEOMETRY.chunk_bytes // GEOMETRY.page_bytes
        assert len(pages) == pages_per_chunk // CONFIG.num_channels
        assert self.quarantined(perm, cube, pages)

    def test_live_pages_steer_the_search(self):
        """With most pages live, the composer lands on the free ones."""
        cube = cube_for(CONFIG, GEOMETRY, "row", channel=0, bank=0, row=12)
        pages_per_chunk = GEOMETRY.chunk_bytes // GEOMETRY.page_bytes
        live = set(range(64, pages_per_chunk))
        rng = np.random.default_rng(1)
        _perm, pages = compose_repair(GEOMETRY, [cube], rng, live_pages=live)
        assert not (set(pages) & live)

    def test_multiple_cubes_quarantined_together(self):
        cubes = [
            cube_for(CONFIG, GEOMETRY, "bank", channel=1, bank=3),
            cube_for(CONFIG, GEOMETRY, "row", channel=6, bank=0, row=900),
        ]
        rng = np.random.default_rng(2)
        perm, pages = compose_repair(GEOMETRY, cubes, rng)
        for cube in cubes:
            assert self.quarantined(perm, cube, pages)

    def test_no_cubes_rejected(self):
        with pytest.raises(DeviceFaultError):
            compose_repair(GEOMETRY, [], np.random.default_rng(0))

    def test_composition_returns_valid_permutation(self):
        cube = cube_for(CONFIG, GEOMETRY, "channel", channel=4)
        rng = np.random.default_rng(3)
        perm, _pages = compose_repair(GEOMETRY, [cube], rng)
        assert sorted(int(p) for p in perm) == list(
            range(GEOMETRY.window_bits)
        )


class TestFaultCubeDataclass:
    def test_fixed_bits_define_mask_and_value(self):
        cube = FaultCube(fixed=((0, 1), (3, 0), (5, 1)))
        assert cube.mask == 0b101001
        assert cube.value == 0b100001
