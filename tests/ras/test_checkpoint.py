"""Crash-safe RAS campaign checkpoints: kill, resume, same answer."""

import json

import pytest

from repro.errors import CampaignInterrupted, ConfigError
from repro.ras.campaign import run_campaign

KINDS = ("row", "cmt")


def _fingerprint(result) -> str:
    return json.dumps(result.fingerprint(), sort_keys=True, default=str)


class TestKillAndResume:
    def test_resumed_campaign_is_bit_identical(self, tmp_path):
        baseline = run_campaign(seed=3, kinds=KINDS, quick=True)
        path = tmp_path / "ras.ckpt"
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(
                seed=3,
                kinds=KINDS,
                quick=True,
                checkpoint_path=str(path),
                stop_after_batch=2,
            )
        assert excinfo.value.checkpoint_path == str(path)
        assert path.exists()
        resumed = run_campaign(
            seed=3,
            kinds=KINDS,
            quick=True,
            checkpoint_path=str(path),
            resume=True,
        )
        assert resumed.resumed
        assert _fingerprint(resumed) == _fingerprint(baseline)

    def test_resumed_flag_is_not_part_of_the_fingerprint(self, tmp_path):
        path = tmp_path / "ras.ckpt"
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                seed=3,
                kinds=KINDS,
                quick=True,
                checkpoint_path=str(path),
                stop_after_batch=1,
            )
        resumed = run_campaign(
            seed=3,
            kinds=KINDS,
            quick=True,
            checkpoint_path=str(path),
            resume=True,
        )
        assert resumed.to_dict()["resumed"] is True
        assert resumed.fingerprint()["resumed"] is False


class TestCheckpointValidation:
    def test_mismatched_parameters_are_rejected(self, tmp_path):
        path = tmp_path / "ras.ckpt"
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                seed=3,
                kinds=KINDS,
                quick=True,
                checkpoint_path=str(path),
                stop_after_batch=1,
            )
        with pytest.raises(ConfigError, match="different parameters"):
            run_campaign(
                seed=4,  # different campaign key
                kinds=KINDS,
                quick=True,
                checkpoint_path=str(path),
                resume=True,
            )

    def test_resume_without_checkpoint_file_fails(self, tmp_path):
        with pytest.raises(ConfigError):
            run_campaign(
                seed=3,
                kinds=KINDS,
                quick=True,
                checkpoint_path=str(tmp_path / "missing.ckpt"),
                resume=True,
            )

    def test_stop_after_requires_a_checkpoint_path(self):
        from repro.errors import RASError

        with pytest.raises(RASError):
            run_campaign(seed=3, kinds=KINDS, quick=True, stop_after_batch=1)
