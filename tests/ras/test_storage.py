"""Tests for the modeled device contents and poison semantics."""

from repro.ras.storage import DeviceStorage


class TestBasics:
    def test_write_read_round_trip(self):
        storage = DeviceStorage()
        storage.write(0x40, 7)
        assert storage.read(0x40) == (7, False)
        assert storage.read(0x80) == (None, False)

    def test_unhealthy_write_destroys(self):
        storage = DeviceStorage()
        storage.write(0x40, 7)
        storage.write(0x40, 9, healthy=False)
        assert storage.read(0x40) == (None, True)

    def test_poison_sticky_until_healthy_write(self):
        storage = DeviceStorage()
        storage.write(0x40, 7)
        storage.poison(0x40)
        assert storage.read(0x40) == (None, True)
        storage.write(0x40, 8)
        assert storage.read(0x40) == (8, False)


class TestMove:
    def test_move_carries_value_and_poison(self):
        storage = DeviceStorage()
        storage.write(0x40, 7)
        assert storage.move(0x40, 0x80)
        assert storage.read(0x80) == (7, False)
        storage.poison(0x80)
        assert not storage.move(0x80, 0xC0)
        assert storage.read(0xC0) == (None, True)
        assert storage.read(0x80) == (None, False)

    def test_move_many_survives_overlapping_sets(self):
        """An in-place permutation copy: dst set == src set, rotated.

        A sequential per-line move would clobber not-yet-read sources;
        the batched move must read everything first.
        """
        storage = DeviceStorage()
        srcs = [0x00, 0x40, 0x80, 0xC0]
        for index, src in enumerate(srcs):
            storage.write(src, 100 + index)
        dsts = srcs[1:] + srcs[:1]  # rotate: 0x00 -> 0x40 -> ... -> 0x00
        assert storage.move_many(srcs, dsts) == 4
        for index, dst in enumerate(dsts):
            assert storage.read(dst) == (100 + index, False)

    def test_move_many_propagates_poison(self):
        storage = DeviceStorage()
        storage.write(0x00, 1)
        storage.poison(0x40)
        intact = storage.move_many([0x00, 0x40], [0x40, 0x00])
        assert intact == 1
        assert storage.read(0x40) == (1, False)
        assert storage.read(0x00) == (None, True)

    def test_occupied_and_poisoned_sorted(self):
        storage = DeviceStorage()
        storage.write(0x80, 1)
        storage.write(0x00, 2)
        storage.poison(0xC0)
        assert storage.occupied_lines() == [0x00, 0x80]
        assert storage.poisoned_lines() == [0xC0]
