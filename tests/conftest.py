"""Shared pytest fixtures for the whole suite."""

import pytest

from repro import errors


@pytest.fixture(autouse=True)
def _reset_deprecation_registry():
    """Isolate the once-per-process deprecation registry per test.

    ``warn_deprecated_once`` deduplicates by key for the life of the
    process, so without this reset a test asserting on a deprecation
    warning passes or fails depending on which other tests ran first.
    """
    saved = set(errors._DEPRECATION_WARNED)
    errors._DEPRECATION_WARNED.clear()
    yield
    errors._DEPRECATION_WARNED.clear()
    errors._DEPRECATION_WARNED.update(saved)
