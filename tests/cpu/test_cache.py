"""Tests for the set-associative write-back cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError

KiB = 1024


def make_cache(size=4 * KiB, ways=4) -> SetAssociativeCache:
    return SetAssociativeCache(size, line_bytes=64, ways=ways)


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        hit, _wb = cache.access(0x1000)
        assert not hit
        hit, _wb = cache.access(0x1000)
        assert hit

    def test_same_line_different_bytes_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        hit, _wb = cache.access(0x103F)
        assert hit

    def test_lru_eviction(self):
        cache = make_cache(size=64 * 4, ways=4)  # one set, 4 ways
        for index in range(4):
            cache.access(index * 64)
        cache.access(0)  # refresh line 0
        cache.access(4 * 64)  # evicts LRU = line 1
        assert cache.access(0)[0]
        assert not cache.access(64)[0]

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=64 * 2, ways=2)
        cache.access(0)
        cache.access(64)
        _hit, writeback = cache.access(128)
        assert writeback is None

    def test_dirty_eviction_writes_back(self):
        cache = make_cache(size=64 * 2, ways=2)
        cache.access(0, is_write=True)
        cache.access(64)
        _hit, writeback = cache.access(128)
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=64 * 2, ways=2)
        cache.access(0)
        cache.access(0, is_write=True)
        cache.access(64)
        _hit, writeback = cache.access(128)
        assert writeback == 0

    def test_stats(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = make_cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)[0]


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(1000, line_bytes=64, ways=4)

    def test_bad_line(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(4 * KiB, line_bytes=48, ways=4)


class TestFilterTrace:
    def test_working_set_smaller_than_cache_filters_repeats(self):
        cache = make_cache(size=8 * KiB)
        va = np.tile(np.arange(0, 1024, 64, dtype=np.uint64), 10)
        out = cache.filter_trace(AccessTrace(va=va))
        assert len(out) == 16  # only the cold misses escape

    def test_streaming_passes_through(self):
        cache = make_cache(size=4 * KiB)
        va = np.arange(0, 64 * KiB, 64, dtype=np.uint64)
        out = cache.filter_trace(AccessTrace(va=va))
        assert len(out) == va.size

    def test_variable_tags_preserved(self):
        cache = make_cache()
        trace = AccessTrace(
            va=np.array([0, 4096], dtype=np.uint64),
            variable=np.array([7, 9]),
        )
        out = cache.filter_trace(trace)
        assert out.variable.tolist() == [7, 9]

    def test_writebacks_are_writes(self):
        cache = make_cache(size=64 * 2, ways=2)
        trace = AccessTrace(
            va=np.array([0, 64, 128], dtype=np.uint64),
            is_write=np.array([True, False, False]),
        )
        out = cache.filter_trace(trace)
        # miss(0), miss(64), writeback(0)+miss(128)
        assert len(out) == 4
        writeback_mask = out.va == 0
        assert out.is_write[writeback_mask].sum() >= 1


@given(
    addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300),
)
@settings(max_examples=40, deadline=None)
def test_miss_count_bounded_by_unique_lines_plus_capacity_effects(addresses):
    """Misses >= compulsory (unique lines); hits never exceed revisits."""
    cache = make_cache(size=2 * KiB)
    unique_lines = len({a >> 6 for a in addresses})
    for address in addresses:
        cache.access(address)
    assert cache.stats.misses >= unique_lines
    assert cache.stats.hits <= len(addresses) - unique_lines
