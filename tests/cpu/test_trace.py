"""Tests for access-trace containers and combinators."""

import numpy as np
import pytest

from repro.cpu.trace import AccessTrace, concat_traces, interleave_traces
from repro.errors import SimulationError


def make_trace(values, writes=None, variables=None) -> AccessTrace:
    return AccessTrace(
        va=np.array(values, dtype=np.uint64),
        is_write=None if writes is None else np.array(writes, dtype=bool),
        variable=None if variables is None else np.array(variables),
    )


class TestAccessTrace:
    def test_defaults(self):
        trace = make_trace([1, 2, 3])
        assert len(trace) == 3
        assert not trace.is_write.any()
        assert (trace.variable == -1).all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            make_trace([1, 2], writes=[True])
        with pytest.raises(SimulationError):
            make_trace([1, 2], variables=[0])

    def test_select(self):
        trace = make_trace([10, 20, 30], variables=[0, 1, 0])
        sub = trace.select(trace.variable == 0)
        assert sub.va.tolist() == [10, 30]

    def test_take(self):
        trace = make_trace([10, 20, 30])
        assert trace.take(2).va.tolist() == [10, 20]

    def test_aligned(self):
        trace = make_trace([65, 130])
        aligned = trace.aligned(64)
        assert aligned.va.tolist() == [64, 128]

    def test_variables_present(self):
        trace = make_trace([1, 2, 3], variables=[2, -1, 0])
        assert trace.variables_present().tolist() == [0, 2]


class TestConcat:
    def test_order_preserved(self):
        merged = concat_traces([make_trace([1]), make_trace([2, 3])])
        assert merged.va.tolist() == [1, 2, 3]

    def test_empty(self):
        assert len(concat_traces([])) == 0


class TestInterleave:
    def test_round_robin(self):
        a = make_trace([1, 2], variables=[0, 0])
        b = make_trace([10, 20], variables=[1, 1])
        merged = interleave_traces([a, b])
        assert merged.va.tolist() == [1, 10, 2, 20]

    def test_chunked(self):
        a = make_trace([1, 2, 3, 4])
        b = make_trace([10, 20, 30, 40])
        merged = interleave_traces([a, b], chunk=2)
        assert merged.va.tolist() == [1, 2, 10, 20, 3, 4, 30, 40]

    def test_uneven_lengths_drain(self):
        a = make_trace([1])
        b = make_trace([10, 20, 30])
        merged = interleave_traces([a, b])
        assert sorted(merged.va.tolist()) == [1, 10, 20, 30]
        assert len(merged) == 4

    def test_single_trace_passthrough(self):
        a = make_trace([5, 6])
        assert interleave_traces([a]) is a

    def test_metadata_travels(self):
        a = make_trace([1], writes=[True], variables=[3])
        b = make_trace([2], writes=[False], variables=[4])
        merged = interleave_traces([a, b])
        assert merged.is_write.tolist() == [True, False]
        assert merged.variable.tolist() == [3, 4]

    def test_bad_chunk(self):
        with pytest.raises(SimulationError):
            interleave_traces([make_trace([1])], chunk=0)

    def test_empty_list(self):
        assert len(interleave_traces([])) == 0
