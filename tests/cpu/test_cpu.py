"""Tests for the CPU and accelerator request-stream models."""

import numpy as np
import pytest

from repro.cpu.accelerator import AcceleratorModel
from repro.cpu.cpu import CPUModel
from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError

KiB = 1024


def streaming_trace(lines: int, base: int = 0) -> AccessTrace:
    va = np.uint64(base) + np.arange(lines, dtype=np.uint64) * np.uint64(64)
    return AccessTrace(va=va)


def hot_trace(lines: int, repeats: int) -> AccessTrace:
    one_pass = np.arange(lines, dtype=np.uint64) * np.uint64(64)
    return AccessTrace(va=np.tile(one_pass, repeats))


class TestCPUModel:
    def test_max_inflight(self):
        assert CPUModel(cores=4, mlp_per_core=16).max_inflight == 64

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            CPUModel(cores=0)

    def test_cache_resident_set_filters(self):
        cpu = CPUModel(cores=1)
        result = cpu.external_trace([hot_trace(lines=128, repeats=20)])
        assert result.l1_hit_rate > 0.9
        assert result.miss_fraction < 0.1

    def test_streaming_reaches_memory(self):
        cpu = CPUModel(cores=1)
        result = cpu.external_trace([streaming_trace(lines=64 * KiB // 64 * 4)])
        assert result.miss_fraction > 0.9

    def test_threads_round_robin_onto_cores(self):
        cpu = CPUModel(cores=2)
        traces = [streaming_trace(256, base=i << 24) for i in range(4)]
        result = cpu.external_trace(traces)
        assert result.program_accesses == 4 * 256

    def test_llc_filters_cross_thread_sharing(self):
        cpu = CPUModel(cores=2, llc_bytes=1024 * KiB)
        shared = streaming_trace(512)
        result = cpu.external_trace([shared, shared])
        # Second thread's L1 misses hit in the shared LLC.
        assert result.llc_hit_rate > 0.3

    def test_external_trace_is_line_aligned(self):
        cpu = CPUModel(cores=1)
        trace = AccessTrace(va=np.array([67, 4099], dtype=np.uint64))
        result = cpu.external_trace([trace])
        assert (result.trace.va % 64 == 0).all()


class TestAcceleratorModel:
    def test_more_inflight_than_cpu(self):
        assert AcceleratorModel().max_inflight > CPUModel().max_inflight

    def test_most_accesses_reach_memory(self):
        accel = AcceleratorModel()
        cpu = CPUModel(cores=1)
        trace = hot_trace(lines=512, repeats=4)
        accel_frac = accel.external_trace([trace]).miss_fraction
        cpu_frac = cpu.external_trace([trace]).miss_fraction
        assert accel_frac > cpu_frac

    def test_no_scratch_passthrough(self):
        accel = AcceleratorModel(scratch_bytes=0)
        trace = hot_trace(lines=16, repeats=8)
        result = accel.external_trace([trace])
        assert result.miss_fraction == 1.0

    def test_zero_lanes_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorModel(lanes=0)
