"""Unit + property tests for PA-to-HA mappings (Section 4 correctness)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitfield import AddressLayout
from repro.core.mapping import (
    LinearMapping,
    PermutationMapping,
    identity_mapping,
    mapping_from_field_sources,
)
from repro.errors import MappingError

WIDTH = 16


def small_layout() -> AddressLayout:
    return AddressLayout([("line", 2), ("channel", 3), ("bank", 2), ("row", 9)])


permutations = st.permutations(list(range(WIDTH)))
addresses = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


class TestPermutationMapping:
    def test_identity(self):
        mapping = identity_mapping(8)
        assert mapping.is_identity()
        assert mapping.apply(0b10110101) == 0b10110101

    def test_swap_two_bits(self):
        source = list(range(8))
        source[0], source[7] = source[7], source[0]
        mapping = PermutationMapping(source)
        assert mapping.apply(0b0000_0001) == 0b1000_0000
        assert mapping.apply(0b1000_0000) == 0b0000_0001

    def test_rejects_non_permutation(self):
        with pytest.raises(MappingError):
            PermutationMapping([0, 0, 1])

    def test_rejects_empty(self):
        with pytest.raises(MappingError):
            PermutationMapping([])

    def test_rejects_2d(self):
        with pytest.raises(MappingError):
            PermutationMapping(np.zeros((2, 2), dtype=int))

    def test_apply_vectorised_matches_scalar(self):
        rng = np.random.default_rng(7)
        source = rng.permutation(WIDTH)
        mapping = PermutationMapping(source)
        values = rng.integers(0, 1 << WIDTH, 64, dtype=np.uint64)
        vector = mapping.apply(values)
        scalars = [mapping.apply(int(v)) for v in values]
        np.testing.assert_array_equal(vector, scalars)

    @given(source=permutations, value=addresses)
    @settings(max_examples=60, deadline=None)
    def test_inverse_roundtrip(self, source, value):
        mapping = PermutationMapping(source)
        assert mapping.inverse().apply(mapping.apply(value)) == value

    @given(source=permutations)
    @settings(max_examples=30, deadline=None)
    def test_bijective_on_small_space(self, source):
        mapping = PermutationMapping(source)
        space = np.arange(1 << WIDTH, dtype=np.uint64)
        mapped = mapping.apply(space)
        assert np.unique(mapped).size == space.size

    def test_compose(self):
        rng = np.random.default_rng(3)
        outer = PermutationMapping(rng.permutation(WIDTH))
        inner = PermutationMapping(rng.permutation(WIDTH))
        composed = outer.compose(inner)
        value = 0xBEEF & ((1 << WIDTH) - 1)
        assert composed.apply(value) == outer.apply(inner.apply(value))

    def test_compose_width_mismatch(self):
        with pytest.raises(MappingError):
            identity_mapping(4).compose(identity_mapping(5))

    def test_window_restriction_detection(self):
        source = list(range(12))
        source[3], source[7] = source[7], source[3]
        mapping = PermutationMapping(source)
        assert mapping.restricted_window(2, 9)
        assert not mapping.restricted_window(4, 9)

    def test_window_permutation_extraction(self):
        source = list(range(12))
        source[3], source[7] = source[7], source[3]
        mapping = PermutationMapping(source)
        window = mapping.window_permutation(2, 9)
        assert sorted(window.tolist()) == list(range(7))
        assert window[1] == 5  # absolute bit 3 sources absolute bit 7

    def test_window_permutation_rejects_leak(self):
        source = list(range(12))
        source[0], source[11] = source[11], source[0]
        with pytest.raises(MappingError):
            PermutationMapping(source).window_permutation(2, 9)

    def test_as_matrix_matches_apply(self):
        rng = np.random.default_rng(11)
        mapping = PermutationMapping(rng.permutation(8))
        linear = mapping.to_linear()
        for value in rng.integers(0, 256, 16):
            assert linear.apply(int(value)) == mapping.apply(int(value))

    def test_hash_and_eq(self):
        a = identity_mapping(6)
        b = identity_mapping(6)
        assert a == b and hash(a) == hash(b)


class TestLinearMapping:
    def test_identity_matrix(self):
        mapping = LinearMapping(np.eye(8, dtype=np.uint8))
        assert mapping.is_identity()
        assert mapping.apply(0xA5) == 0xA5

    def test_xor_fold(self):
        # HA bit 0 = PA bit 0 XOR PA bit 3
        matrix = np.eye(4, dtype=np.uint8)
        matrix[0, 3] = 1
        mapping = LinearMapping(matrix)
        assert mapping.apply(0b1000) == 0b1001
        assert mapping.apply(0b1001) == 0b1000
        assert mapping.apply(0b0001) == 0b0001

    def test_singular_rejected(self):
        matrix = np.zeros((3, 3), dtype=np.uint8)
        matrix[0, 0] = matrix[1, 0] = matrix[2, 2] = 1
        with pytest.raises(MappingError):
            LinearMapping(matrix)

    def test_non_square_rejected(self):
        with pytest.raises(MappingError):
            LinearMapping(np.ones((2, 3), dtype=np.uint8))

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_invertible_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        width = 10
        # Random unit upper-triangular matrices are always invertible.
        matrix = np.triu(rng.integers(0, 2, (width, width)), 1).astype(np.uint8)
        np.fill_diagonal(matrix, 1)
        mapping = LinearMapping(matrix)
        inverse = mapping.inverse()
        values = rng.integers(0, 1 << width, 32, dtype=np.uint64)
        roundtrip = inverse.apply(mapping.apply(values))
        np.testing.assert_array_equal(roundtrip, values)

    def test_bijective_exhaustive(self):
        matrix = np.eye(8, dtype=np.uint8)
        matrix[0, 5] = matrix[1, 6] = matrix[2, 7] = 1
        mapping = LinearMapping(matrix)
        space = np.arange(256, dtype=np.uint64)
        assert np.unique(mapping.apply(space)).size == 256

    def test_scalar_vs_vector(self):
        matrix = np.eye(6, dtype=np.uint8)
        matrix[2, 5] = 1
        mapping = LinearMapping(matrix)
        values = np.arange(64, dtype=np.uint64)
        vector = mapping.apply(values)
        scalars = [mapping.apply(int(v)) for v in values]
        np.testing.assert_array_equal(vector, scalars)


class TestFieldSources:
    def test_channel_takes_named_bits(self):
        layout = small_layout()
        mapping = mapping_from_field_sources(layout, {"channel": [9, 10, 11]})
        channel_field = layout["channel"]
        source = mapping.source
        assert source[channel_field.shift : channel_field.end].tolist() == [
            9,
            10,
            11,
        ]

    def test_is_permutation(self):
        layout = small_layout()
        mapping = mapping_from_field_sources(layout, {"channel": [13, 14, 15]})
        assert sorted(mapping.source.tolist()) == list(range(layout.width))

    def test_wrong_count_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_field_sources(small_layout(), {"channel": [1, 2]})

    def test_double_assignment_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_field_sources(
                small_layout(), {"channel": [9, 9, 10]}
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_field_sources(small_layout(), {"channel": [1, 2, 99]})
