"""Tests for the end-to-end mapping-selection pipeline (Section 6.2)."""

import numpy as np
import pytest

from repro.core import ChunkGeometry
from repro.core.selection import (
    select_application_mapping,
    select_mappings_dl,
    select_mappings_kmeans,
)
from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.hbm import hbm2_config
from repro.ml import AutoencoderConfig
from repro.profiling.profiler import profile_trace
from repro.profiling.variables import VariableRegistry

GEO = ChunkGeometry()
LAYOUT = hbm2_config().layout()
FAST_DL = AutoencoderConfig(
    pretrain_steps=20, joint_steps=10, hidden_dim=16, delta_embed_dim=8
)


def stride_profile(strides: list[int], per_variable: int = 2000):
    """A profile with one variable per stride."""
    registry = VariableRegistry()
    parts, tags = [], []
    for index, stride in enumerate(strides):
        base = index * (8 << 20)
        registry.record_allocation(f"v{index}", base, 8 << 20)
        addresses = base + (
            np.arange(per_variable, dtype=np.uint64) * np.uint64(stride * 64)
        ) % np.uint64(8 << 20)
        parts.append(addresses)
        tags.append(np.full(per_variable, index))
    trace = AccessTrace(va=np.concatenate(parts), variable=np.concatenate(tags))
    return profile_trace(trace, registry, name="strides")


class TestApplicationMapping:
    def test_single_mapping_for_all_variables(self):
        profile = stride_profile([1, 16])
        selection = select_application_mapping(profile, LAYOUT, GEO)
        assert selection.num_mappings == 1
        assert set(selection.variable_cluster.values()) == {0}

    def test_empty_profile_rejected(self):
        registry = VariableRegistry()
        profile = profile_trace(
            AccessTrace(va=np.zeros(0, dtype=np.uint64)), registry
        )
        with pytest.raises(ProfilingError):
            select_application_mapping(profile, LAYOUT, GEO)


class TestKMeansSelection:
    def test_distinct_strides_get_distinct_mappings(self):
        profile = stride_profile([1, 16], per_variable=3000)
        selection = select_mappings_kmeans(
            profile, k=2, layout=LAYOUT, geometry=GEO, coverage=1.0
        )
        clusters = selection.variable_cluster
        assert clusters[profile.by_name("v0").variable_id] != clusters[
            profile.by_name("v1").variable_id
        ]

    def test_perms_are_valid_window_permutations(self):
        profile = stride_profile([1, 4, 16])
        selection = select_mappings_kmeans(
            profile, k=3, layout=LAYOUT, geometry=GEO, coverage=1.0
        )
        for perm in selection.window_perms:
            assert sorted(perm.tolist()) == list(range(GEO.window_bits))

    def test_k_clamped(self):
        profile = stride_profile([1, 16])
        selection = select_mappings_kmeans(
            profile, k=10, layout=LAYOUT, geometry=GEO, coverage=1.0
        )
        assert selection.k <= 2

    def test_coverage_limits_clustered_variables(self):
        profile = stride_profile([1, 2, 4, 8], per_variable=1000)
        small = select_mappings_kmeans(
            profile, k=4, layout=LAYOUT, geometry=GEO, coverage=0.3
        )
        assert len(small.variable_cluster) < 4

    def test_elapsed_recorded(self):
        profile = stride_profile([1, 16])
        selection = select_mappings_kmeans(profile, 2, LAYOUT, GEO, coverage=1.0)
        assert selection.elapsed_seconds > 0

    def test_perm_for_variable(self):
        profile = stride_profile([1, 16])
        selection = select_mappings_kmeans(profile, 2, LAYOUT, GEO, coverage=1.0)
        vid = profile.profiles[0].variable_id
        assert selection.perm_for_variable(vid) is not None
        assert selection.perm_for_variable(999) is None


class TestDLSelection:
    def test_separates_stride_families(self):
        profile = stride_profile([1, 1, 16, 16], per_variable=2500)
        selection = select_mappings_dl(
            profile,
            k=2,
            layout=LAYOUT,
            geometry=GEO,
            config=AutoencoderConfig(),
            coverage=1.0,
        )
        clusters = selection.variable_cluster
        same_a = clusters[profile.by_name("v0").variable_id] == clusters[
            profile.by_name("v1").variable_id
        ]
        same_b = clusters[profile.by_name("v2").variable_id] == clusters[
            profile.by_name("v3").variable_id
        ]
        cross = clusters[profile.by_name("v0").variable_id] != clusters[
            profile.by_name("v2").variable_id
        ]
        assert same_a and same_b and cross

    def test_details_recorded(self):
        profile = stride_profile([1, 16])
        selection = select_mappings_dl(
            profile, 2, LAYOUT, GEO, config=FAST_DL, coverage=1.0
        )
        assert selection.method == "dl-kmeans"
        assert 0 <= selection.details["vocab_coverage"] <= 1


class TestProgrammerDirected:
    """The no-profiling path: mappings from known strides."""

    @pytest.mark.parametrize("stride", [1, 2, 4, 8, 16, 32])
    def test_known_stride_reaches_all_channels(self, stride):
        from repro.core.selection import mapping_for_stride
        from repro.core.sdam import SDAMController
        from repro.hbm import WindowModel, hbm2_config

        config = hbm2_config()
        perm = mapping_for_stride(stride, LAYOUT, GEO)
        controller = SDAMController(GEO)
        mapping_id = controller.register_mapping(perm)
        for chunk in range(4):
            controller.assign_chunk(chunk, mapping_id)
        pa = (
            np.arange(4096, dtype=np.uint64) * np.uint64(stride * 64)
        ) % np.uint64(4 * GEO.chunk_bytes)
        stats = WindowModel(config, max_inflight=256).simulate(
            controller.translate(pa)
        )
        assert stats.channels_touched == 32
        # At least half of peak: full CLP, possibly activate-bound.
        assert stats.throughput_gbps > 0.5 * config.peak_bandwidth_gbps

    def test_invalid_stride(self):
        from repro.core.selection import mapping_for_stride

        with pytest.raises(ProfilingError):
            mapping_for_stride(0, LAYOUT, GEO)
