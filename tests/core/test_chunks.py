"""Unit tests for chunk geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import ChunkGeometry, GiB, MiB
from repro.errors import AddressError, ConfigError


class TestPrototypeGeometry:
    """The paper's numbers: 8 GB, 2 MB chunks, 64 B lines."""

    def setup_method(self):
        self.geo = ChunkGeometry()

    def test_counts_match_paper(self):
        assert self.geo.num_chunks == 4096  # Section 4: 8 GB / 2 MB
        assert self.geo.window_bits == 15  # Section 5.2: 15-bit chunk offset
        assert self.geo.chunk_shift == 21
        assert self.geo.line_bits == 6
        assert self.geo.address_bits == 33

    def test_pages_per_chunk(self):
        assert self.geo.pages_per_chunk == 512
        assert self.geo.lines_per_chunk == 32768

    def test_window_slice(self):
        assert self.geo.window_slice() == (6, 21)

    def test_chunk_number_and_offset(self):
        pa = 5 * (2 * MiB) + 12345
        assert self.geo.chunk_number(pa) == 5
        assert self.geo.chunk_offset(pa) == 12345

    def test_chunk_split_vectorised(self):
        pas = np.array([0, 2 * MiB, 2 * MiB + 64], dtype=np.uint64)
        np.testing.assert_array_equal(self.geo.chunk_number(pas), [0, 1, 1])
        np.testing.assert_array_equal(self.geo.chunk_offset(pas), [0, 0, 64])

    def test_chunk_base_roundtrip(self):
        assert self.geo.chunk_base(7) == 7 * 2 * MiB

    def test_chunk_base_out_of_range(self):
        with pytest.raises(AddressError):
            self.geo.chunk_base(4096)

    def test_check_address(self):
        self.geo.check_address(8 * GiB - 1)
        with pytest.raises(AddressError):
            self.geo.check_address(8 * GiB)
        with pytest.raises(AddressError):
            self.geo.check_address(np.array([0, 8 * GiB], dtype=np.uint64))

    def test_page_number(self):
        assert self.geo.page_number(4096 * 3 + 17) == 3


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            ChunkGeometry(chunk_bytes=3 * MiB)

    def test_ordering_enforced(self):
        with pytest.raises(ConfigError):
            ChunkGeometry(page_bytes=32, line_bytes=64)

    def test_chunk_larger_than_memory_rejected(self):
        with pytest.raises(ConfigError):
            ChunkGeometry(total_bytes=1 * MiB, chunk_bytes=2 * MiB)


class TestGuardRows:
    def test_guard_offsets_at_edges(self):
        geo = ChunkGeometry()
        offsets = geo.guard_line_offsets(rows_per_guard=2, row_bytes=256)
        rows_in_chunk = (2 * MiB) // 256
        assert offsets.tolist() == [
            0,
            256,
            (rows_in_chunk - 2) * 256,
            (rows_in_chunk - 1) * 256,
        ]

    def test_guard_rows_must_leave_space(self):
        geo = ChunkGeometry()
        with pytest.raises(ConfigError):
            geo.guard_line_offsets(rows_per_guard=10000, row_bytes=256)

    def test_guard_rows_positive(self):
        with pytest.raises(ConfigError):
            ChunkGeometry().guard_line_offsets(rows_per_guard=0, row_bytes=256)


@given(
    chunk_pow=st.integers(18, 24),
    total_pow=st.integers(30, 37),
)
@settings(max_examples=30, deadline=None)
def test_derived_widths_consistent(chunk_pow, total_pow):
    geo = ChunkGeometry(total_bytes=1 << total_pow, chunk_bytes=1 << chunk_pow)
    assert geo.num_chunks == 1 << (total_pow - chunk_pow)
    assert geo.window_bits == geo.chunk_shift - geo.line_bits
    low, high = geo.window_slice()
    assert high - low == geo.window_bits


@given(pa=st.integers(0, 8 * GiB - 1))
@settings(max_examples=50, deadline=None)
def test_chunk_decomposition_roundtrip(pa):
    geo = ChunkGeometry()
    reconstructed = geo.chunk_base(geo.chunk_number(pa)) + geo.chunk_offset(pa)
    assert reconstructed == pa
