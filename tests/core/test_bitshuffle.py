"""Tests for bit-shuffle mapping selection from flip-rate profiles."""

import numpy as np
import pytest

from repro.core.bitshuffle import (
    rank_bits_by_flip_rate,
    select_global_mapping,
    select_window_permutation,
)
from repro.core.chunks import ChunkGeometry
from repro.errors import MappingError
from repro.hbm.config import hbm2_config

GEO = ChunkGeometry()
LAYOUT = hbm2_config().layout()


class TestRanking:
    def test_hottest_first(self):
        rates = np.array([0.1, 0.9, 0.5])
        assert rank_bits_by_flip_rate(rates).tolist() == [1, 2, 0]

    def test_ties_break_toward_low_bits(self):
        rates = np.array([0.5, 0.5, 0.9])
        assert rank_bits_by_flip_rate(rates).tolist() == [2, 0, 1]


class TestWindowSelection:
    def test_hot_bits_become_channel_bits(self):
        # Window bits 10..14 (addr bits 16..20) are the hottest.
        rates = np.zeros(GEO.window_bits)
        rates[10:15] = 1.0
        perm = select_window_permutation(rates, LAYOUT, GEO)
        channel = LAYOUT["channel"]
        low, _high = GEO.window_slice()
        channel_sources = perm[channel.shift - low : channel.end - low]
        assert sorted(channel_sources.tolist()) == [10, 11, 12, 13, 14]

    def test_result_is_window_permutation(self):
        rng = np.random.default_rng(2)
        rates = rng.random(GEO.window_bits)
        perm = select_window_permutation(rates, LAYOUT, GEO)
        assert sorted(perm.tolist()) == list(range(GEO.window_bits))

    def test_uniform_rates_give_streaming_friendly_identityish(self):
        # With all-equal rates, ties break toward low bits, so channel
        # keeps the lowest (finest-grained) bits: the identity choice.
        rates = np.ones(GEO.window_bits)
        perm = select_window_permutation(rates, LAYOUT, GEO)
        assert perm[:5].tolist() == [0, 1, 2, 3, 4]

    def test_wrong_length_rejected(self):
        with pytest.raises(MappingError):
            select_window_permutation(np.ones(3), LAYOUT, GEO)

    def test_stride16_pattern_maps_to_all_channels(self):
        """The motivating example: stride-16 flips addr bits 10+."""
        stride_lines = 16
        pa = np.arange(4096, dtype=np.uint64) * np.uint64(stride_lines * 64)
        pa %= np.uint64(2 * 1024 * 1024)
        bits = (pa[:, None] >> np.arange(6, 21, dtype=np.uint64)) & np.uint64(1)
        rates = np.abs(np.diff(bits, axis=0)).mean(axis=0)
        perm = select_window_permutation(rates, LAYOUT, GEO)
        from repro.core.amu import AddressMappingUnit

        amu = AddressMappingUnit(GEO.window_bits)
        mapping = amu.full_mapping(perm, GEO)
        ha = mapping.apply(pa)
        channels = (ha >> np.uint64(6)) & np.uint64(31)
        assert np.unique(channels).size == 32


class TestGlobalSelection:
    def test_full_width_permutation(self):
        rng = np.random.default_rng(3)
        rates = rng.random(LAYOUT.width)
        mapping = select_global_mapping(rates, LAYOUT)
        assert sorted(mapping.source.tolist()) == list(range(LAYOUT.width))

    def test_line_offset_bits_never_move(self):
        rng = np.random.default_rng(4)
        rates = rng.random(LAYOUT.width)
        mapping = select_global_mapping(rates, LAYOUT, line_bits=6)
        assert mapping.source[:6].tolist() == [0, 1, 2, 3, 4, 5]

    def test_hot_high_bits_take_channel(self):
        rates = np.zeros(LAYOUT.width)
        rates[20:25] = 1.0
        mapping = select_global_mapping(rates, LAYOUT)
        channel = LAYOUT["channel"]
        sources = mapping.source[channel.shift : channel.end]
        assert sorted(sources.tolist()) == [20, 21, 22, 23, 24]

    def test_wrong_length_rejected(self):
        with pytest.raises(MappingError):
            select_global_mapping(np.ones(5), LAYOUT)
