"""Unit tests for the AMU crossbar model (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amu import AddressMappingUnit, amu_area_report
from repro.core.chunks import ChunkGeometry
from repro.errors import MappingError


class TestConfigCodec:
    def test_prototype_config_bits(self):
        # 15 offset bits x ceil(log2 15) = 60 bits (Section 5.3).
        amu = AddressMappingUnit(15)
        assert amu.select_bits == 4
        assert amu.config_bits == 60

    @given(perm=st.permutations(list(range(15))))
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_roundtrip(self, perm):
        amu = AddressMappingUnit(15)
        word = amu.encode_config(perm)
        assert word < 1 << amu.config_bits
        np.testing.assert_array_equal(amu.decode_config(word), perm)

    def test_rejects_non_permutation(self):
        amu = AddressMappingUnit(4)
        with pytest.raises(MappingError):
            amu.encode_config([0, 0, 1, 2])

    def test_rejects_wrong_length(self):
        amu = AddressMappingUnit(4)
        with pytest.raises(MappingError):
            amu.encode_config([0, 1, 2])

    def test_too_narrow_window_rejected(self):
        with pytest.raises(MappingError):
            AddressMappingUnit(1)


class TestDatapath:
    def test_identity_apply(self):
        amu = AddressMappingUnit(8)
        offsets = np.arange(256, dtype=np.uint64)
        np.testing.assert_array_equal(amu.apply(offsets, np.arange(8)), offsets)

    def test_reverse_permutation(self):
        amu = AddressMappingUnit(4)
        perm = [3, 2, 1, 0]
        assert amu.apply(0b0001, perm) == 0b1000

    def test_full_mapping_keeps_boundaries(self):
        geometry = ChunkGeometry()
        amu = AddressMappingUnit(geometry.window_bits)
        rng = np.random.default_rng(5)
        perm = rng.permutation(geometry.window_bits)
        mapping = amu.full_mapping(perm, geometry)
        low, high = geometry.window_slice()
        assert mapping.restricted_window(low, high)
        # Chunk number and line offset survive.
        pa = (123 << geometry.chunk_shift) | 0b101010
        ha = mapping.apply(pa)
        assert ha >> geometry.chunk_shift == 123
        assert ha & 0b111111 == 0b101010

    def test_full_mapping_window_mismatch(self):
        geometry = ChunkGeometry()
        amu = AddressMappingUnit(8)
        with pytest.raises(MappingError):
            amu.full_mapping(np.arange(8), geometry)

    def test_switch_count(self):
        assert AddressMappingUnit(15).switch_count == 225


class TestAreaModel:
    def test_report_near_paper_fraction(self):
        report = amu_area_report()
        # Table 3: AMU = 0.5 % of VU37P logic (with 8 duplicates).
        assert 0.002 < report["logic_fraction"] < 0.008
        assert report["config_bits"] == 60
        assert report["duplicates"] == 8

    def test_single_amu_is_cheaper(self):
        one = amu_area_report(duplicates=1)
        eight = amu_area_report(duplicates=8)
        assert one["luts"] * 8 == pytest.approx(eight["luts"])
