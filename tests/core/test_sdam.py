"""Unit + property tests for the SDAM controller datapath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.cmt import MappingNamespace
from repro.core.mapping import PermutationMapping, identity_mapping
from repro.core.sdam import GlobalMappingTranslator, SDAMController
from repro.errors import AddressError, CMTError, MappingError

SMALL = ChunkGeometry(total_bytes=64 * MiB)  # 32 chunks, quick to exercise


def rolled(shift: int) -> np.ndarray:
    return np.roll(np.arange(SMALL.window_bits), shift)


class TestGlobalTranslator:
    def test_identity_passthrough(self):
        translator = GlobalMappingTranslator(identity_mapping(26))
        pa = np.arange(0, 1 << 20, 4096, dtype=np.uint64)
        np.testing.assert_array_equal(translator.translate(pa), pa)

    def test_applies_mapping(self):
        source = list(range(26))
        source[6], source[20] = source[20], source[6]
        translator = GlobalMappingTranslator(PermutationMapping(source))
        assert translator.translate(np.array([1 << 20], dtype=np.uint64))[0] == 1 << 6


class TestSDAMController:
    def test_register_window_permutation(self):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(rolled(1))
        assert mapping_id == 1

    def test_register_full_mapping(self):
        controller = SDAMController(SMALL)
        full = controller.amu.full_mapping(rolled(2), SMALL)
        assert controller.register_mapping(full) == 1

    def test_register_rejects_leaky_mapping(self):
        controller = SDAMController(SMALL)
        source = list(range(SMALL.address_bits))
        source[0], source[25] = source[25], source[0]  # moves line offset bit
        with pytest.raises(MappingError):
            controller.register_mapping(PermutationMapping(source))

    def test_unconfigured_chunks_are_identity(self):
        controller = SDAMController(SMALL)
        pa = np.arange(0, 4 * MiB, 64, dtype=np.uint64)
        np.testing.assert_array_equal(controller.translate(pa), pa)

    def test_assigned_chunk_is_shuffled_others_not(self):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(rolled(3))
        controller.assign_chunk(1, mapping_id)
        pa = np.array([100 << 6, (2 * MiB) + (100 << 6)], dtype=np.uint64)
        ha = controller.translate(pa)
        assert ha[0] == pa[0]  # chunk 0 untouched
        assert ha[1] != pa[1]  # chunk 1 remapped
        expected = controller.full_mapping(mapping_id).apply(int(pa[1]))
        assert int(ha[1]) == expected

    def test_chunk_number_always_preserved(self):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(rolled(5))
        for chunk in range(SMALL.num_chunks):
            controller.assign_chunk(chunk, mapping_id)
        rng = np.random.default_rng(0)
        pa = rng.integers(0, SMALL.total_bytes, 2000, dtype=np.uint64)
        ha = controller.translate(pa)
        np.testing.assert_array_equal(
            SMALL.chunk_number(ha), SMALL.chunk_number(pa)
        )

    def test_release_chunk_restores_identity(self):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(rolled(3))
        controller.assign_chunk(2, mapping_id)
        controller.release_chunk(2)
        pa = np.array([(4 * MiB) + 4096], dtype=np.uint64)
        np.testing.assert_array_equal(controller.translate(pa), pa)

    def test_out_of_range_address_rejected(self):
        controller = SDAMController(SMALL)
        with pytest.raises(AddressError):
            controller.translate(np.array([SMALL.total_bytes], dtype=np.uint64))

    def test_translate_scalar(self):
        controller = SDAMController(SMALL)
        assert controller.translate_scalar(4096) == 4096

    @given(shift=st.integers(1, 14), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_translation_is_injective(self, shift, seed):
        """Section 4: one PA maps to exactly one HA and vice versa."""
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(rolled(shift))
        rng = np.random.default_rng(seed)
        for chunk in range(0, SMALL.num_chunks, 2):
            controller.assign_chunk(chunk, mapping_id)
        pa = np.unique(
            rng.integers(0, SMALL.total_bytes, 4000, dtype=np.uint64)
        )
        ha = controller.translate(pa)
        assert np.unique(ha).size == pa.size

    @given(shift=st.integers(0, 14))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_through_inverse(self, shift):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(rolled(shift))
        controller.assign_chunk(0, mapping_id)
        pa = np.arange(0, 2 * MiB, 997 * 64, dtype=np.uint64)
        ha = controller.translate(pa)
        inverse = controller.full_mapping(mapping_id).inverse()
        np.testing.assert_array_equal(inverse.apply(ha), pa)


class TestNamespacedRegistration:
    def test_quota_enforced_through_controller(self):
        controller = SDAMController(SMALL)
        controller.register_namespace(MappingNamespace("a", 1, 1))
        controller.register_mapping(rolled(1), namespace="a")
        with pytest.raises(CMTError, match="quota exhausted"):
            controller.register_mapping(rolled(2), namespace="a")

    def test_shadow_table_mirrors_namespace(self):
        controller = SDAMController(SMALL, shadow=True)
        controller.register_namespace(MappingNamespace("a", 1, 2))
        controller.register_mapping(rolled(1), namespace="a")
        assert controller.cmt.diff(controller.shadow_cmt) == {
            "entries": [],
            "configs": [],
        }
        controller.release_namespace("a")
        assert "a" not in controller.cmt.namespaces
        assert "a" not in controller.shadow_cmt.namespaces

    def test_unnamespaced_registration_unchanged(self):
        controller = SDAMController(SMALL)
        controller.register_namespace(MappingNamespace("a", 1, 1))
        # Registrations outside any namespace are never charged.
        controller.register_mapping(rolled(1))
        controller.register_mapping(rolled(2))
        assert controller.cmt.namespace_usage("a")["used"] == 0
