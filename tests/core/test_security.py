"""Tests for the row-hammer guard-row extension (Section 4)."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.sdam import SDAMController
from repro.core.security import plan_guard_rows, verify_isolation
from repro.errors import ConfigError
from repro.hbm.config import hbm2_config

GEO = ChunkGeometry(total_bytes=64 * MiB)
HBM = hbm2_config()


def controller_with(shift: int = 0) -> SDAMController:
    controller = SDAMController(GEO)
    if shift:
        mapping_id = controller.register_mapping(
            np.roll(np.arange(GEO.window_bits), shift)
        )
        for chunk in range(GEO.num_chunks):
            controller.assign_chunk(chunk, mapping_id)
    return controller


class TestGuardPlan:
    def test_plan_reserves_edge_addresses(self):
        controller = controller_with()
        plan = plan_guard_rows(GEO, HBM, controller, chunk_no=2)
        assert plan.guard_pa.size > 0
        assert plan.reserved_bytes == plan.guard_pa.size * 64
        # All guard addresses live inside the chunk.
        assert (GEO.chunk_number(plan.guard_pa) == 2).all()

    def test_guard_rows_flank_protected_rows(self):
        controller = controller_with()
        plan = plan_guard_rows(GEO, HBM, controller, chunk_no=1)
        protected = {(int(b), int(r)) for b, r in plan.protected_rows}
        guards = {(int(b), int(r)) for b, r in plan.guard_rows}
        # Each bank's guard set includes its data edge rows.
        banks = {b for b, _ in protected}
        for bank in banks:
            rows = sorted(r for b, r in protected if b == bank)
            assert (bank, rows[0]) in guards
            assert (bank, rows[-1]) in guards

    def test_overhead_is_small(self):
        controller = controller_with()
        plan = plan_guard_rows(GEO, HBM, controller, chunk_no=0)
        # Guards cost a small share of the 2 MB chunk.
        assert plan.reserved_bytes < GEO.chunk_bytes // 8

    def test_invalid_rows_per_guard(self):
        controller = controller_with()
        with pytest.raises(ConfigError):
            plan_guard_rows(GEO, HBM, controller, 0, rows_per_guard=0)


class TestIsolation:
    def test_neighbouring_chunk_cannot_hammer(self):
        """Attackers owning adjacent chunks cannot reach protected rows."""
        controller = controller_with()
        plan = plan_guard_rows(GEO, HBM, controller, chunk_no=4)
        assert verify_isolation(
            plan, GEO, HBM, controller, attacker_chunks=[3, 5]
        )

    def test_isolation_holds_under_shuffled_mapping(self):
        controller = controller_with(shift=5)
        plan = plan_guard_rows(GEO, HBM, controller, chunk_no=4)
        assert verify_isolation(
            plan, GEO, HBM, controller, attacker_chunks=[3, 5]
        )

    def test_same_chunk_without_guards_would_hammer(self):
        """Sanity: dropping the guards exposes adjacency inside the chunk."""
        controller = controller_with()
        plan = plan_guard_rows(GEO, HBM, controller, chunk_no=4)
        from repro.core.security import GuardPlan

        unguarded = GuardPlan(
            chunk_no=4,
            guard_pa=np.zeros(0, dtype=np.uint64),
            protected_rows=plan.protected_rows,
            guard_rows=np.zeros((0, 2), dtype=np.int64),
        )
        assert not verify_isolation(
            unguarded, GEO, HBM, controller, attacker_chunks=[4]
        )
