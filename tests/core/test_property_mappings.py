"""Property tests: registered mappings are bijections, scalar == vector.

The Section 4 guarantee — no two physical addresses alias one hardware
address — holds for *every* mapping family the systems register:
boot-time permutations, BSM-selected shuffles, XOR hash folds, and the
SDAM controller's per-chunk window permutations.  These tests state it
as a property over the mapping constructors rather than per-example.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitshuffle import select_global_mapping
from repro.core.chunks import ChunkGeometry
from repro.core.hashing import default_hash_mapping
from repro.core.mapping import PermutationMapping, identity_mapping
from repro.core.sdam import GlobalMappingTranslator, SDAMController
from repro.hbm.config import hbm2_config

LAYOUT = hbm2_config().layout()


def _controller(num_mappings: int = 4, seed: int = 0) -> SDAMController:
    geometry = ChunkGeometry(total_bytes=hbm2_config().total_bytes)
    controller = SDAMController(geometry)
    rng = np.random.default_rng(seed)
    mapping_ids = [
        controller.register_mapping(rng.permutation(geometry.window_bits))
        for _ in range(num_mappings)
    ]
    for chunk_no in range(geometry.num_chunks):
        controller.assign_chunk(
            chunk_no, mapping_ids[chunk_no % len(mapping_ids)]
        )
    return controller


def _random_trace(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lines = hbm2_config().total_bytes // 64
    return rng.integers(0, lines, n, dtype=np.uint64) * np.uint64(64)


class TestRegisteredMappingsAreBijections:
    def test_identity(self):
        assert identity_mapping(LAYOUT.width).as_operator().is_bijective()

    def test_hash_mapping(self):
        assert default_hash_mapping(LAYOUT).as_operator().is_bijective()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_random_permutation(self, seed):
        rng = np.random.default_rng(seed)
        mapping = PermutationMapping(rng.permutation(LAYOUT.width))
        operator = mapping.as_operator()
        assert operator.is_bijective()
        assert operator.invert().compose(operator).is_identity()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_bsm_selected_mapping(self, seed):
        rng = np.random.default_rng(seed)
        rates = rng.random(LAYOUT.width)
        mapping = select_global_mapping(rates, LAYOUT)
        assert mapping.as_operator().is_bijective()

    def test_every_controller_mapping(self):
        controller = _controller(num_mappings=6, seed=3)
        low, high = controller.geometry.window_slice()
        for index in range(controller.cmt.live_mappings):
            operator = controller.operator_of(index)
            assert operator.is_bijective()
            # Section 4's correctness rule: line-offset and chunk-number
            # bits pass through untouched.
            full = controller.full_mapping(index)
            assert full.restricted_window(low, high)

    def test_inverse_round_trip_on_trace(self):
        mapping = default_hash_mapping(LAYOUT)
        pa = _random_trace(512, seed=9)
        np.testing.assert_array_equal(
            mapping.inverse().apply(mapping.apply(pa)), pa
        )


class TestScalarAgreesWithVector:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_global_translator(self, seed):
        rng = np.random.default_rng(seed)
        translator = GlobalMappingTranslator(
            PermutationMapping(rng.permutation(LAYOUT.width))
        )
        pa = _random_trace(64, seed=seed & 0xFFFF)
        vector = translator.translate(pa)
        scalars = [translator.translate_scalar(int(a)) for a in pa]
        np.testing.assert_array_equal(vector, scalars)

    def test_global_hash_translator(self):
        translator = GlobalMappingTranslator(default_hash_mapping(LAYOUT))
        pa = _random_trace(128, seed=21)
        vector = translator.translate(pa)
        scalars = [translator.translate_scalar(int(a)) for a in pa]
        np.testing.assert_array_equal(vector, scalars)

    def test_sdam_controller(self):
        controller = _controller(num_mappings=5, seed=1)
        pa = _random_trace(256, seed=2)
        vector = controller.translate(pa)
        scalars = [controller.translate_scalar(int(a)) for a in pa]
        np.testing.assert_array_equal(vector, scalars)

    def test_sdam_scalar_uses_chunk_mapping(self):
        controller = _controller(num_mappings=3, seed=4)
        geometry = controller.geometry
        for chunk_no in (0, 1, 2, geometry.num_chunks - 1):
            pa = chunk_no * geometry.chunk_bytes + 0b1010101000000
            index = controller.cmt.mapping_index_of(chunk_no)
            expected = controller.operator_of(index).apply(pa)
            assert controller.translate_scalar(pa) == expected
