"""Unit + property tests for the GF(2) bit-operator algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmatrix import (
    BitOperator,
    BitProjection,
    gf2_inverse,
    gf2_matmul,
)
from repro.errors import MappingError

WIDTH = 16

permutations = st.permutations(list(range(WIDTH)))
addresses = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


class TestConstruction:
    def test_identity(self):
        op = BitOperator.identity(8)
        assert op.is_identity()
        assert op.is_permutation()
        assert op.apply(0b1011_0101) == 0b1011_0101
        assert op.num_ops == 1  # one shift/mask pass moves every bit

    def test_rejects_non_square(self):
        with pytest.raises(MappingError):
            BitOperator(np.ones((2, 3), dtype=np.uint8))

    def test_rejects_zero_width(self):
        with pytest.raises(MappingError):
            BitOperator.identity(0)

    def test_rejects_too_wide(self):
        with pytest.raises(MappingError):
            BitOperator(np.eye(65, dtype=np.uint8))

    def test_from_permutation_rejects_duplicates(self):
        with pytest.raises(MappingError):
            BitOperator.from_permutation([0, 0, 1])

    def test_from_xor_terms_bounds_checked(self):
        with pytest.raises(MappingError):
            BitOperator.from_xor_terms(4, {5: [0]})
        with pytest.raises(MappingError):
            BitOperator.from_xor_terms(4, {0: [7]})

    def test_swap_two_bits(self):
        source = list(range(8))
        source[0], source[7] = source[7], source[0]
        op = BitOperator.from_permutation(source)
        assert op.apply(0b0000_0001) == 0b1000_0000
        assert op.apply(0b1000_0000) == 0b0000_0001

    def test_xor_fold(self):
        # out bit 0 = in bit 0 XOR in bit 3
        op = BitOperator.from_xor_terms(4, {0: [3]})
        assert op.apply(0b1000) == 0b1001
        assert op.apply(0b1001) == 0b1000
        assert op.apply(0b0001) == 0b0001


class TestAlgebra:
    def test_compose_matches_sequential_apply(self):
        rng = np.random.default_rng(3)
        outer = BitOperator.from_permutation(rng.permutation(WIDTH))
        inner = BitOperator.from_xor_terms(WIDTH, {1: [9], 7: [2, 11]})
        fused = outer.compose(inner)
        values = rng.integers(0, 1 << WIDTH, 256, dtype=np.uint64)
        np.testing.assert_array_equal(
            fused.apply(values), outer.apply(inner.apply(values))
        )

    def test_compose_width_mismatch(self):
        with pytest.raises(MappingError):
            BitOperator.identity(8).compose(BitOperator.identity(9))

    def test_invert_round_trip(self):
        rng = np.random.default_rng(5)
        op = BitOperator.from_permutation(rng.permutation(WIDTH))
        assert op.invert().compose(op).is_identity()
        assert op.compose(op.invert()).is_identity()

    def test_singular_rejected(self):
        matrix = np.zeros((4, 4), dtype=np.uint8)
        matrix[0, 0] = 1  # rank 1
        op = BitOperator(matrix)
        assert not op.is_bijective()
        with pytest.raises(MappingError):
            op.invert()

    def test_permutation_source_round_trip(self):
        rng = np.random.default_rng(11)
        source = rng.permutation(WIDTH)
        op = BitOperator.from_permutation(source)
        np.testing.assert_array_equal(op.permutation_source(), source)

    def test_permutation_source_rejects_linear(self):
        op = BitOperator.from_xor_terms(8, {0: [3]})
        with pytest.raises(MappingError):
            op.permutation_source()

    def test_gf2_matmul_shape_check(self):
        with pytest.raises(MappingError):
            gf2_matmul(np.eye(3, dtype=np.uint8), np.eye(4, dtype=np.uint8))

    def test_gf2_inverse_matches_matmul(self):
        rng = np.random.default_rng(17)
        op = BitOperator.from_xor_terms(
            WIDTH, {0: [5, 9], 3: [12], 10: [1, 2, 4]}
        )
        inverse = gf2_inverse(op.matrix)
        np.testing.assert_array_equal(
            gf2_matmul(inverse, op.matrix), np.eye(WIDTH, dtype=np.uint8)
        )


class TestProjection:
    def test_field_of_mapped_address(self):
        rng = np.random.default_rng(7)
        op = BitOperator.from_permutation(rng.permutation(WIDTH))
        shift, width = 4, 5
        projection = op.project(shift, width)
        values = rng.integers(0, 1 << WIDTH, 128, dtype=np.uint64)
        mapped = op.apply(values)
        expected = (mapped >> np.uint64(shift)) & np.uint64((1 << width) - 1)
        np.testing.assert_array_equal(projection.apply(values), expected)

    def test_projection_bounds(self):
        op = BitOperator.identity(8)
        with pytest.raises(MappingError):
            op.project(5, 4)
        with pytest.raises(MappingError):
            op.project(0, 0)

    def test_rectangular_matrix(self):
        projection = BitProjection(np.eye(8, dtype=np.uint8)[2:5])
        assert projection.out_width == 3
        assert projection.in_width == 8
        assert projection.apply(0b0001_1100) == 0b111

    def test_rejects_1d(self):
        with pytest.raises(MappingError):
            BitProjection(np.ones(4, dtype=np.uint8))


class TestScalarAndEquality:
    def test_scalar_returns_int(self):
        op = BitOperator.identity(8)
        result = op.apply(5)
        assert isinstance(result, int)
        assert result == 5

    def test_scalar_matches_vector(self):
        rng = np.random.default_rng(23)
        op = BitOperator.from_xor_terms(WIDTH, {2: [8, 14], 9: [0]})
        values = rng.integers(0, 1 << WIDTH, 64, dtype=np.uint64)
        vector = op.apply(values)
        scalars = [op.apply(int(v)) for v in values]
        np.testing.assert_array_equal(vector, scalars)

    def test_equality_and_hash(self):
        a = BitOperator.from_permutation([1, 0, 2])
        b = BitOperator.from_permutation([1, 0, 2])
        c = BitOperator.identity(3)
        assert a == b and hash(a) == hash(b)
        assert a != c
        # operator vs same-matrix projection: shapes match, contents rule
        assert a == BitProjection(a.matrix)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(source=permutations, value=addresses)
    def test_permutation_operator_permutes_bits(self, source, value):
        op = BitOperator.from_permutation(source)
        expected = 0
        for out_bit, in_bit in enumerate(source):
            expected |= ((value >> in_bit) & 1) << out_bit
        assert op.apply(value) == expected

    @settings(max_examples=40, deadline=None)
    @given(source=permutations)
    def test_permutation_operator_bijective(self, source):
        op = BitOperator.from_permutation(source)
        assert op.is_permutation()
        assert op.is_bijective()
        assert op.invert().compose(op).is_identity()

    @settings(max_examples=40, deadline=None)
    @given(
        folds=st.dictionaries(
            st.integers(0, WIDTH - 1),
            st.lists(st.integers(0, WIDTH - 1), max_size=3),
            max_size=4,
        ),
        value=addresses,
    )
    def test_compose_associative_on_values(self, folds, value):
        fold = BitOperator.from_xor_terms(WIDTH, folds)
        rotate = BitOperator.from_permutation(
            [(i + 1) % WIDTH for i in range(WIDTH)]
        )
        assert rotate.compose(fold).apply(value) == rotate.apply(
            fold.apply(value)
        )
