"""Unit tests for the two-level Chunk Mapping Table (Section 5.3)."""

import numpy as np
import pytest

from repro.core.cmt import (
    ChunkMappingTable,
    MappingNamespace,
    cmt_storage_report,
    partition_budget,
)
from repro.errors import CMTError


def make_table(**overrides) -> ChunkMappingTable:
    defaults = dict(num_chunks=64, window_bits=15, max_mappings=8)
    defaults.update(overrides)
    return ChunkMappingTable(**defaults)


class TestInterning:
    def test_identity_preinterned_at_zero(self):
        table = make_table()
        np.testing.assert_array_equal(table.config_of(0), np.arange(15))
        assert table.live_mappings == 1

    def test_interning_deduplicates(self):
        table = make_table()
        perm = np.roll(np.arange(15), 1)
        first = table.intern_mapping(perm)
        second = table.intern_mapping(perm)
        assert first == second
        assert table.live_mappings == 2

    def test_table_overflow(self):
        table = make_table(max_mappings=2)
        table.intern_mapping(np.roll(np.arange(15), 1))
        with pytest.raises(CMTError):
            table.intern_mapping(np.roll(np.arange(15), 2))

    def test_invalid_permutation_rejected(self):
        with pytest.raises(Exception):
            make_table().intern_mapping([0] * 15)

    def test_config_of_unknown(self):
        with pytest.raises(CMTError):
            make_table().config_of(5)


class TestChunkBinding:
    def test_default_binding_is_identity(self):
        table = make_table()
        assert table.mapping_index_of(3) == 0

    def test_set_and_lookup(self):
        table = make_table()
        idx = table.intern_mapping(np.roll(np.arange(15), 3))
        table.set_chunk(10, idx)
        assert table.mapping_index_of(10) == idx

    def test_vectorised_lookup(self):
        table = make_table()
        idx = table.intern_mapping(np.roll(np.arange(15), 3))
        table.set_chunk(1, idx)
        chunks = np.array([0, 1, 2])
        np.testing.assert_array_equal(table.mapping_index_of(chunks), [0, idx, 0])

    def test_reset_chunk(self):
        table = make_table()
        idx = table.intern_mapping(np.roll(np.arange(15), 3))
        table.set_chunk(4, idx)
        table.reset_chunk(4)
        assert table.mapping_index_of(4) == 0

    def test_unbound_index_rejected(self):
        with pytest.raises(CMTError):
            make_table().set_chunk(0, 5)

    def test_chunk_out_of_range(self):
        table = make_table()
        with pytest.raises(CMTError):
            table.set_chunk(64, 0)
        with pytest.raises(CMTError):
            table.mapping_index_of(64)
        with pytest.raises(CMTError):
            table.mapping_index_of(np.array([0, 64]))

    def test_driver_writes_counted(self):
        table = make_table()
        before = table.driver_writes
        idx = table.intern_mapping(np.roll(np.arange(15), 1))
        table.set_chunk(0, idx)
        assert table.driver_writes == before + 2


class TestStorageAccounting:
    def test_paper_sizing_example(self):
        """128 GB socket, 2 MB chunks: 64k x 8b + 256 x 60b ~ 68 KB."""
        report = cmt_storage_report()
        assert report["num_chunks"] == 65536
        assert report["index_bits"] == 8
        assert report["config_bits"] == 60
        assert 65 < report["two_level_kb"] < 70  # paper: 67.94 KB
        assert 480 < report["flat_kb"] < 500  # paper: 491 KB
        assert report["saving_factor"] > 7

    def test_two_level_always_wins_at_scale(self):
        table = make_table(num_chunks=4096, max_mappings=256)
        assert table.storage_bits_two_level() < table.storage_bits_flat()

    def test_lookup_latency_negligible_vs_hbm(self):
        # Section 5.3: 6 ns SRAM vs >130 ns HBM access.
        assert make_table().lookup_latency_ns < 130 / 10


class TestValidation:
    def test_zero_chunks_rejected(self):
        with pytest.raises(CMTError):
            ChunkMappingTable(num_chunks=0, window_bits=15)

    def test_zero_mappings_rejected(self):
        with pytest.raises(CMTError):
            ChunkMappingTable(num_chunks=4, window_bits=15, max_mappings=0)


class TestShadowAndFaultHooks:
    def pair(self):
        """A live table plus a shadow that saw the same driver writes."""
        table, shadow = make_table(), make_table()
        perm = np.roll(np.arange(15), 3)
        for t in (table, shadow):
            index = t.intern_mapping(perm)
            t.set_chunk(5, index)
        return table, shadow

    def test_diff_clean_tables_empty(self):
        table, shadow = self.pair()
        assert table.diff(shadow) == {"entries": [], "configs": []}

    def test_flip_entry_bit_shows_in_diff(self):
        table, shadow = self.pair()
        table.flip_entry_bit(5, 0)
        assert table.diff(shadow) == {"entries": [5], "configs": []}

    def test_flip_config_bit_shows_in_diff(self):
        table, shadow = self.pair()
        table.flip_config_bit(1, lane=2, bit=3)
        assert table.diff(shadow)["configs"] == [1]

    def test_flips_count_no_driver_writes(self):
        table, shadow = self.pair()
        before = table.driver_writes
        table.flip_entry_bit(5, 1)
        table.flip_config_bit(1, lane=0, bit=0)
        assert table.driver_writes == before

    def test_restore_from_rolls_back_and_rebuilds_intern(self):
        table, shadow = self.pair()
        table.flip_entry_bit(5, 2)
        table.flip_config_bit(1, lane=4, bit=1)
        repaired = table.restore_from(shadow)
        assert repaired == 2
        assert table.diff(shadow) == {"entries": [], "configs": []}
        # The intern map works again: re-interning dedups, not appends.
        perm = np.roll(np.arange(15), 3)
        assert table.intern_mapping(perm) == 1

    def test_out_of_range_flips_rejected(self):
        table, _shadow = self.pair()
        with pytest.raises(CMTError):
            table.flip_entry_bit(1000, 0)
        with pytest.raises(CMTError):
            table.flip_entry_bit(0, 16)
        with pytest.raises(CMTError):
            table.flip_config_bit(99, 0, 0)
        with pytest.raises(CMTError):
            table.flip_config_bit(1, 99, 0)

    def test_shape_mismatch_rejected(self):
        table, _ = self.pair()
        with pytest.raises(CMTError):
            table.diff(make_table(num_chunks=32))


class TestNamespaces:
    def test_partition_budget_is_contiguous_after_identity(self):
        spaces = partition_budget({"a": 4, "b": 2, "c": 8}, max_mappings=16)
        assert spaces["a"].base == 1 and spaces["a"].end == 5
        assert spaces["b"].base == 5 and spaces["b"].end == 7
        assert spaces["c"].base == 7 and spaces["c"].end == 15
        for one in spaces.values():
            for two in spaces.values():
                if one is not two:
                    assert not one.overlaps(two)

    def test_partition_budget_overflow(self):
        with pytest.raises(CMTError, match="budget exhausted"):
            partition_budget({"a": 4, "b": 4}, max_mappings=8)

    def test_partition_budget_rejects_zero_quota(self):
        with pytest.raises(CMTError, match="quota"):
            partition_budget({"a": 0})

    def test_namespace_validation(self):
        with pytest.raises(CMTError):
            MappingNamespace("", 1, 1)
        with pytest.raises(CMTError):
            MappingNamespace("t", 0, 1)  # slot 0 is the shared identity
        with pytest.raises(CMTError):
            MappingNamespace("t", 1, 0)

    def test_register_rejects_overlap_and_overflow(self):
        table = make_table()
        table.register_namespace(MappingNamespace("a", 1, 3))
        with pytest.raises(CMTError, match="overlaps"):
            table.register_namespace(MappingNamespace("b", 2, 2))
        with pytest.raises(CMTError, match="holds"):
            table.register_namespace(MappingNamespace("b", 100, 2))
        # Same-tenant re-registration of the identical slice is a no-op;
        # a *different* slice for a held tenant is rejected.
        table.register_namespace(MappingNamespace("a", 1, 3))
        with pytest.raises(CMTError, match="already holds"):
            table.register_namespace(MappingNamespace("a", 4, 2))

    def test_quota_charged_per_distinct_config(self):
        table = make_table()
        table.register_namespace(MappingNamespace("a", 1, 2))
        first = np.roll(np.arange(15), 1)
        second = np.roll(np.arange(15), 2)
        table.intern_mapping(first, namespace="a")
        # Re-interning the same config and the identity are both free.
        table.intern_mapping(first, namespace="a")
        table.intern_mapping(np.arange(15), namespace="a")
        assert table.namespace_usage("a")["used"] == 1
        table.intern_mapping(second, namespace="a")
        with pytest.raises(CMTError, match="quota exhausted"):
            table.intern_mapping(np.roll(np.arange(15), 3), namespace="a")
        assert table.namespace_usage("a") == {
            "tenant": "a",
            "base": 1,
            "capacity": 2,
            "used": 2,
            "free": 0,
        }

    def test_cross_tenant_dedup_charges_both(self):
        """Two tenants interning the same config share the hardware slot
        but are each charged — the quota proof needs per-tenant bounds."""
        table = make_table()
        table.register_namespace(MappingNamespace("a", 1, 2))
        table.register_namespace(MappingNamespace("b", 3, 2))
        perm = np.roll(np.arange(15), 1)
        index_a = table.intern_mapping(perm, namespace="a")
        index_b = table.intern_mapping(perm, namespace="b")
        assert index_a == index_b  # dedup: one SRAM slot
        assert table.namespace_usage("a")["used"] == 1
        assert table.namespace_usage("b")["used"] == 1

    def test_unregistered_namespace_rejected(self):
        table = make_table()
        with pytest.raises(CMTError, match="no namespace"):
            table.intern_mapping(np.roll(np.arange(15), 1), namespace="ghost")
        with pytest.raises(CMTError, match="no namespace"):
            table.namespace_usage("ghost")

    def test_release_drops_charges_keeps_configs(self):
        table = make_table()
        table.register_namespace(MappingNamespace("a", 1, 1))
        perm = np.roll(np.arange(15), 1)
        index = table.intern_mapping(perm, namespace="a")
        live = table.live_mappings
        table.release_namespace("a")
        assert "a" not in table.namespaces
        # Hardware has no erase: the config survives, deduplicated.
        assert table.live_mappings == live
        assert table.intern_mapping(perm) == index
        # The slice is re-carvable by a new tenant.
        table.register_namespace(MappingNamespace("b", 1, 1))
        table.intern_mapping(np.roll(np.arange(15), 2), namespace="b")
