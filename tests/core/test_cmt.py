"""Unit tests for the two-level Chunk Mapping Table (Section 5.3)."""

import numpy as np
import pytest

from repro.core.cmt import ChunkMappingTable, cmt_storage_report
from repro.errors import CMTError


def make_table(**overrides) -> ChunkMappingTable:
    defaults = dict(num_chunks=64, window_bits=15, max_mappings=8)
    defaults.update(overrides)
    return ChunkMappingTable(**defaults)


class TestInterning:
    def test_identity_preinterned_at_zero(self):
        table = make_table()
        np.testing.assert_array_equal(table.config_of(0), np.arange(15))
        assert table.live_mappings == 1

    def test_interning_deduplicates(self):
        table = make_table()
        perm = np.roll(np.arange(15), 1)
        first = table.intern_mapping(perm)
        second = table.intern_mapping(perm)
        assert first == second
        assert table.live_mappings == 2

    def test_table_overflow(self):
        table = make_table(max_mappings=2)
        table.intern_mapping(np.roll(np.arange(15), 1))
        with pytest.raises(CMTError):
            table.intern_mapping(np.roll(np.arange(15), 2))

    def test_invalid_permutation_rejected(self):
        with pytest.raises(Exception):
            make_table().intern_mapping([0] * 15)

    def test_config_of_unknown(self):
        with pytest.raises(CMTError):
            make_table().config_of(5)


class TestChunkBinding:
    def test_default_binding_is_identity(self):
        table = make_table()
        assert table.mapping_index_of(3) == 0

    def test_set_and_lookup(self):
        table = make_table()
        idx = table.intern_mapping(np.roll(np.arange(15), 3))
        table.set_chunk(10, idx)
        assert table.mapping_index_of(10) == idx

    def test_vectorised_lookup(self):
        table = make_table()
        idx = table.intern_mapping(np.roll(np.arange(15), 3))
        table.set_chunk(1, idx)
        chunks = np.array([0, 1, 2])
        np.testing.assert_array_equal(table.mapping_index_of(chunks), [0, idx, 0])

    def test_reset_chunk(self):
        table = make_table()
        idx = table.intern_mapping(np.roll(np.arange(15), 3))
        table.set_chunk(4, idx)
        table.reset_chunk(4)
        assert table.mapping_index_of(4) == 0

    def test_unbound_index_rejected(self):
        with pytest.raises(CMTError):
            make_table().set_chunk(0, 5)

    def test_chunk_out_of_range(self):
        table = make_table()
        with pytest.raises(CMTError):
            table.set_chunk(64, 0)
        with pytest.raises(CMTError):
            table.mapping_index_of(64)
        with pytest.raises(CMTError):
            table.mapping_index_of(np.array([0, 64]))

    def test_driver_writes_counted(self):
        table = make_table()
        before = table.driver_writes
        idx = table.intern_mapping(np.roll(np.arange(15), 1))
        table.set_chunk(0, idx)
        assert table.driver_writes == before + 2


class TestStorageAccounting:
    def test_paper_sizing_example(self):
        """128 GB socket, 2 MB chunks: 64k x 8b + 256 x 60b ~ 68 KB."""
        report = cmt_storage_report()
        assert report["num_chunks"] == 65536
        assert report["index_bits"] == 8
        assert report["config_bits"] == 60
        assert 65 < report["two_level_kb"] < 70  # paper: 67.94 KB
        assert 480 < report["flat_kb"] < 500  # paper: 491 KB
        assert report["saving_factor"] > 7

    def test_two_level_always_wins_at_scale(self):
        table = make_table(num_chunks=4096, max_mappings=256)
        assert table.storage_bits_two_level() < table.storage_bits_flat()

    def test_lookup_latency_negligible_vs_hbm(self):
        # Section 5.3: 6 ns SRAM vs >130 ns HBM access.
        assert make_table().lookup_latency_ns < 130 / 10


class TestValidation:
    def test_zero_chunks_rejected(self):
        with pytest.raises(CMTError):
            ChunkMappingTable(num_chunks=0, window_bits=15)

    def test_zero_mappings_rejected(self):
        with pytest.raises(CMTError):
            ChunkMappingTable(num_chunks=4, window_bits=15, max_mappings=0)


class TestShadowAndFaultHooks:
    def pair(self):
        """A live table plus a shadow that saw the same driver writes."""
        table, shadow = make_table(), make_table()
        perm = np.roll(np.arange(15), 3)
        for t in (table, shadow):
            index = t.intern_mapping(perm)
            t.set_chunk(5, index)
        return table, shadow

    def test_diff_clean_tables_empty(self):
        table, shadow = self.pair()
        assert table.diff(shadow) == {"entries": [], "configs": []}

    def test_flip_entry_bit_shows_in_diff(self):
        table, shadow = self.pair()
        table.flip_entry_bit(5, 0)
        assert table.diff(shadow) == {"entries": [5], "configs": []}

    def test_flip_config_bit_shows_in_diff(self):
        table, shadow = self.pair()
        table.flip_config_bit(1, lane=2, bit=3)
        assert table.diff(shadow)["configs"] == [1]

    def test_flips_count_no_driver_writes(self):
        table, shadow = self.pair()
        before = table.driver_writes
        table.flip_entry_bit(5, 1)
        table.flip_config_bit(1, lane=0, bit=0)
        assert table.driver_writes == before

    def test_restore_from_rolls_back_and_rebuilds_intern(self):
        table, shadow = self.pair()
        table.flip_entry_bit(5, 2)
        table.flip_config_bit(1, lane=4, bit=1)
        repaired = table.restore_from(shadow)
        assert repaired == 2
        assert table.diff(shadow) == {"entries": [], "configs": []}
        # The intern map works again: re-interning dedups, not appends.
        perm = np.roll(np.arange(15), 3)
        assert table.intern_mapping(perm) == 1

    def test_out_of_range_flips_rejected(self):
        table, _shadow = self.pair()
        with pytest.raises(CMTError):
            table.flip_entry_bit(1000, 0)
        with pytest.raises(CMTError):
            table.flip_entry_bit(0, 16)
        with pytest.raises(CMTError):
            table.flip_config_bit(99, 0, 0)
        with pytest.raises(CMTError):
            table.flip_config_bit(1, 99, 0)

    def test_shape_mismatch_rejected(self):
        table, _ = self.pair()
        with pytest.raises(CMTError):
            table.diff(make_table(num_chunks=32))
