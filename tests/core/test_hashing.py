"""Tests for the hashing-based mapping (BS+HM baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import default_hash_mapping, hash_mapping
from repro.errors import MappingError
from repro.hbm.config import hbm2_config

LAYOUT = hbm2_config().layout()
CHANNEL = LAYOUT["channel"]


def channels_of(mapping, pa: np.ndarray) -> np.ndarray:
    ha = mapping.apply(pa)
    return CHANNEL.extract(ha)


class TestHashMapping:
    def test_explicit_fold(self):
        mapping = hash_mapping(LAYOUT, {0: [16]})
        base = 1 << 16
        assert channels_of(mapping, np.array([0], dtype=np.uint64))[0] == 0
        assert channels_of(mapping, np.array([base], dtype=np.uint64))[0] == 1

    def test_invertible(self):
        mapping = default_hash_mapping(LAYOUT)
        rng = np.random.default_rng(0)
        pa = rng.integers(0, 1 << 33, 512, dtype=np.uint64)
        roundtrip = mapping.inverse().apply(mapping.apply(pa))
        np.testing.assert_array_equal(roundtrip, pa)

    def test_channel_bit_out_of_range(self):
        with pytest.raises(MappingError):
            hash_mapping(LAYOUT, {9: [16]})

    def test_fold_source_out_of_range(self):
        with pytest.raises(MappingError):
            hash_mapping(LAYOUT, {0: [40]})

    def test_channel_into_channel_rejected(self):
        with pytest.raises(MappingError):
            hash_mapping(LAYOUT, {0: [7]})


class TestDefaultHash:
    def test_covers_wide_stride_range(self):
        """Strides whose hot bits are inside the reach spread channels."""
        mapping = default_hash_mapping(LAYOUT)
        for stride_lines in (1, 2, 4, 8, 16, 32, 64, 128):
            pa = np.arange(1024, dtype=np.uint64) * np.uint64(stride_lines * 64)
            used = np.unique(channels_of(mapping, pa)).size
            assert used >= 16, f"stride {stride_lines} used only {used} channels"

    def test_has_residual_weakness(self):
        """Some access pattern still underutilises channels (Fig. 11b)."""
        mapping = default_hash_mapping(LAYOUT, reach_bits=20)
        # Stride far above the reach: only untouched high bits flip.
        stride = 1 << 27
        pa = np.arange(64, dtype=np.uint64) * np.uint64(stride)
        used = np.unique(channels_of(mapping, pa)).size
        assert used <= 2

    def test_identity_below_channel(self):
        mapping = default_hash_mapping(LAYOUT)
        # Line-offset bits pass through untouched.
        pa = np.arange(64, dtype=np.uint64)
        ha = mapping.apply(pa)
        np.testing.assert_array_equal(ha & np.uint64(63), pa & np.uint64(63))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_bijective_sample(self, seed):
        mapping = default_hash_mapping(LAYOUT)
        rng = np.random.default_rng(seed)
        pa = np.unique(rng.integers(0, 1 << 33, 1000, dtype=np.uint64))
        assert np.unique(mapping.apply(pa)).size == pa.size
