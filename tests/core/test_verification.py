"""Tests for the Section 4 correctness auditors."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.mapping import LinearMapping, PermutationMapping, identity_mapping
from repro.core.sdam import SDAMController
from repro.core.verification import (
    VerificationReport,
    audit_controller,
    verify_mapping,
)
from repro.errors import MappingError, MappingIntegrityError

SMALL = ChunkGeometry(total_bytes=64 * MiB)


class TestReport:
    def test_passing_report(self):
        report = VerificationReport()
        report.check(True, "fine")
        assert report.ok
        report.raise_if_failed()

    def test_failing_report(self):
        report = VerificationReport()
        report.check(False, "broken invariant")
        assert not report.ok
        with pytest.raises(MappingError):
            report.raise_if_failed()

    def test_repr(self):
        report = VerificationReport()
        report.check(True, "x")
        assert "1 checks" in repr(report)


class TestVerifyMapping:
    def test_identity_passes(self):
        assert verify_mapping(identity_mapping(20)).ok

    def test_random_permutation_passes(self):
        rng = np.random.default_rng(3)
        mapping = PermutationMapping(rng.permutation(24))
        assert verify_mapping(mapping).ok

    def test_linear_mapping_passes(self):
        matrix = np.eye(20, dtype=np.uint8)
        matrix[6, 15] = 1
        assert verify_mapping(LinearMapping(matrix)).ok


class TestAuditController:
    def test_fresh_controller_passes(self):
        controller = SDAMController(SMALL)
        report = audit_controller(controller)
        assert report.ok
        assert report.checks_run > 0

    def test_configured_controller_passes(self):
        controller = SDAMController(SMALL)
        for shift in range(1, 6):
            mapping_id = controller.register_mapping(
                np.roll(np.arange(SMALL.window_bits), shift)
            )
            controller.assign_chunk(shift, mapping_id)
        report = audit_controller(controller, sample_chunks=16)
        assert report.ok

    def test_detects_corrupted_cmt(self):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(
            np.roll(np.arange(SMALL.window_bits), 4)
        )
        controller.assign_chunk(0, mapping_id)
        # Corrupt the second-level table behind the controller's back.
        controller.cmt._configs[mapping_id] = np.zeros(
            SMALL.window_bits, dtype=np.int64
        )
        report = audit_controller(controller, sample_chunks=32)
        assert not report.ok


class TestStrictMode:
    def corrupted_controller(self):
        controller = SDAMController(SMALL)
        mapping_id = controller.register_mapping(
            np.roll(np.arange(SMALL.window_bits), 4)
        )
        controller.assign_chunk(0, mapping_id)
        controller.cmt._configs[mapping_id] = np.zeros(
            SMALL.window_bits, dtype=np.int64
        )
        return controller

    def test_strict_audit_raises_structured_error(self):
        controller = self.corrupted_controller()
        with pytest.raises(MappingIntegrityError) as excinfo:
            audit_controller(controller, sample_chunks=32, strict=True)
        error = excinfo.value
        assert error.code == "cmt-config"
        assert error.mapping_index == 1
        assert isinstance(error, MappingError)  # catchable as the base

    def test_strict_audit_passes_healthy_state(self):
        controller = SDAMController(SMALL)
        report = audit_controller(controller, strict=True)
        assert report.ok

    def test_strict_verify_mapping_flags_bijectivity(self):
        class BrokenMapping:  # aliases everything to zero
            width = 12

            def apply(self, x):
                return np.zeros_like(np.asarray(x))

            def inverse(self):
                return self

        with pytest.raises(MappingIntegrityError) as excinfo:
            verify_mapping(BrokenMapping(), strict=True)
        assert excinfo.value.code == "bijectivity"

    def test_failure_records_convert_to_errors(self):
        report = VerificationReport()
        report.check(False, "bad word", code="cmt-binding", chunk_no=7)
        error = report.records[0].as_error()
        assert isinstance(error, MappingIntegrityError)
        assert error.code == "cmt-binding"
        assert error.chunk_no == 7
