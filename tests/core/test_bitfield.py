"""Unit tests for the address bit-field algebra."""

import numpy as np
import pytest

from repro.core.bitfield import AddressLayout, BitField, extract_bits, insert_bits
from repro.errors import ConfigError


def canonical_layout() -> AddressLayout:
    return AddressLayout(
        [("line", 6), ("channel", 5), ("column", 2), ("bank", 3), ("row", 17)]
    )


class TestBitHelpers:
    def test_extract_scalar(self):
        assert extract_bits(0b1011_0000, shift=4, width=4) == 0b1011

    def test_insert_scalar(self):
        assert insert_bits(0b1011, shift=4, width=4) == 0b1011_0000

    def test_insert_masks_excess(self):
        assert insert_bits(0b11011, shift=0, width=4) == 0b1011

    def test_extract_array(self):
        values = np.array([0x40, 0x80, 0xC0], dtype=np.uint64)
        np.testing.assert_array_equal(
            extract_bits(values, shift=6, width=2), [1, 2, 3]
        )

    def test_roundtrip(self):
        for value in (0, 1, 0x7F, 0xABCDE):
            field = extract_bits(insert_bits(value, 7, 20), 7, 20)
            assert field == value & ((1 << 20) - 1)


class TestBitField:
    def test_end_and_mask(self):
        field = BitField("channel", shift=6, width=5)
        assert field.end == 11
        assert field.mask == 0b11111 << 6

    def test_bit_positions(self):
        field = BitField("column", shift=11, width=2)
        assert list(field.bit_positions()) == [11, 12]

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            BitField("x", shift=0, width=0)

    def test_negative_shift_rejected(self):
        with pytest.raises(ConfigError):
            BitField("x", shift=-1, width=3)


class TestAddressLayout:
    def test_width_is_sum(self):
        assert canonical_layout().width == 33

    def test_field_order(self):
        layout = canonical_layout()
        assert layout.field_names == ["line", "channel", "column", "bank", "row"]

    def test_fields_tile_without_gaps(self):
        layout = canonical_layout()
        expected_shift = 0
        for field in layout:
            assert field.shift == expected_shift
            expected_shift = field.end
        assert expected_shift == layout.width

    def test_decode_encode_roundtrip(self):
        layout = canonical_layout()
        address = 0x1_2345_6789
        fields = layout.decode(address)
        assert layout.encode(**fields) == address

    def test_decode_array(self):
        layout = canonical_layout()
        addresses = np.array([64, 128, 192], dtype=np.uint64)
        channels = layout.decode(addresses)["channel"]
        np.testing.assert_array_equal(channels, [1, 2, 3])

    def test_encode_unknown_field(self):
        with pytest.raises(ConfigError):
            canonical_layout().encode(nonexistent=1)

    def test_missing_fields_default_zero(self):
        layout = canonical_layout()
        assert layout.encode(channel=3) == 3 << 6

    def test_duplicate_field_rejected(self):
        with pytest.raises(ConfigError):
            AddressLayout([("a", 4), ("a", 4)])

    def test_empty_layout_rejected(self):
        with pytest.raises(ConfigError):
            AddressLayout([])

    def test_field_of_bit(self):
        layout = canonical_layout()
        assert layout.field_of_bit(0).name == "line"
        assert layout.field_of_bit(6).name == "channel"
        assert layout.field_of_bit(10).name == "channel"
        assert layout.field_of_bit(11).name == "column"
        assert layout.field_of_bit(32).name == "row"

    def test_field_of_bit_out_of_range(self):
        with pytest.raises(ConfigError):
            canonical_layout().field_of_bit(33)

    def test_getitem_unknown(self):
        with pytest.raises(ConfigError):
            canonical_layout()["nope"]

    def test_contains(self):
        layout = canonical_layout()
        assert "row" in layout
        assert "nope" not in layout

    def test_equality(self):
        assert canonical_layout() == canonical_layout()
        other = AddressLayout([("line", 6), ("rest", 27)])
        assert canonical_layout() != other
